package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/tolerance"
)

// routes builds the daemon's HTTP surface.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("POST /v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/tolerance", s.instrument("tolerance", s.handleTolerance))
	mux.HandleFunc("POST /v1/experiment", s.instrument("experiment", s.handleExperiment))
	return mux
}

// instrument wraps a handler with request counting and the
// per-endpoint latency histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.countReq(endpoint)
		h(w, r)
		s.lat.observe(endpoint, time.Since(start))
	}
}

// clientID is the fair-scheduling identity of a request: the
// X-Reprod-Client header when set (one logical client across
// connections), otherwise the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Reprod-Client"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// wantStream reports whether the request asked for SSE progress.
func wantStream(r *http.Request) bool {
	return r.URL.Query().Get("stream") != "" || r.Header.Get("Accept") == "text/event-stream"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps a failure to its HTTP shape: queue-full →
// 429 + Retry-After, client-gone → nothing (the connection is dead),
// everything else → the given status with a JSON envelope.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() == nil {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		}
		// Client disconnected: nobody is listening.
	default:
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleRun resolves a single spec. A sweep spec's baseline resolves
// first (cached like any run), exactly as in an offline plan.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	spec, err := req.SpecJSON.Spec()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	client := clientID(r)
	ctx := r.Context()
	start := time.Now()
	var base *run.Outcome
	if !spec.IsBaseline() {
		bout, _, berr := s.resolve(ctx, client, spec.BaselineSpec(false), nil)
		if berr != nil {
			s.writeError(w, r, http.StatusInternalServerError, berr)
			return
		}
		base = &bout
	}
	out, src, err := s.resolve(ctx, client, spec, base)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if out.Err != nil {
		s.writeError(w, r, http.StatusInternalServerError, out.Err)
		return
	}
	resp := RunResponse{
		Spec:      SpecToJSON(out.Spec),
		Hash:      out.Spec.Hash(),
		Source:    src,
		Cached:    src != SourceComputed,
		WallUs:    time.Since(start).Microseconds(),
		Point:     pointToJSON(out.Point),
		ElapsedNs: int64(out.Res.Elapsed),
		Verified:  out.Res.Verified,
	}
	if !req.Minimal {
		res := out.Res
		resp.Result = &res
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep resolves an app × knob × values matrix, optionally
// streaming per-run progress over SSE.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if len(req.Values) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("service: sweep needs values"))
		return
	}
	k, err := run.ParseKnob(req.Knob)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if k == core.KnobNone {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("service: sweep needs a knob (o, g, L, bw)"))
		return
	}
	if req.Analytic {
		s.serveAnalyticSweep(w, r, req, k)
		return
	}
	p := run.NewPlan()
	specs := make([]run.Spec, len(req.Values))
	var baseSpec run.Spec
	for i, v := range req.Values {
		sp := run.Spec{
			App: req.App, Procs: req.Procs, Scale: req.Scale, Seed: req.Seed,
			Knob: k, Value: v, CPUSpeedup: req.CPUSpeedup,
		}
		if c := req.Coll; c != nil {
			sp.Coll.Barrier, sp.Coll.Broadcast, sp.Coll.AllReduce = c.Barrier, c.Broadcast, c.AllReduce
		}
		// AddSweep declares the (coll-preserving) baseline dependency.
		specs[i] = p.AddSweep(sp, req.Verify)
		if i == 0 {
			baseSpec = specs[i].BaselineSpec(req.Verify)
		}
	}

	build := func(pr *planResult) (*SweepResponse, error) {
		bout, ok := pr.store.Get(baseSpec)
		if !ok {
			return nil, fmt.Errorf("service: baseline missing after sweep")
		}
		if bout.Err != nil {
			return nil, bout.Err
		}
		resp := &SweepResponse{
			App: req.App, Knob: req.Knob,
			Baseline: pointToJSON(bout.Point),
			BaseHash: baseSpec.Hash(),
			Cache:    pr.counts,
		}
		for _, sp := range specs {
			out, ok := pr.store.Get(sp)
			if !ok {
				return nil, fmt.Errorf("service: point %v missing after sweep", sp)
			}
			if out.Err != nil {
				return nil, out.Err
			}
			resp.Points = append(resp.Points, SweepPoint{
				PointJSON: pointToJSON(out.Point),
				Hash:      sp.Hash(),
				Source:    pr.sources[sp.Hash()],
			})
		}
		return resp, nil
	}
	s.servePlan(w, r, p, func(pr *planResult) (any, error) { return build(pr) })
}

// instrumentedSpec builds the depgraph-instrumented baseline spec
// behind the analytic endpoints, validated like any wire spec.
func instrumentedSpec(app string, procs int, scale float64, seed int64, verify bool, cpu float64, coll *CollJSON) (run.Spec, error) {
	w := SpecJSON{
		App: app, Procs: procs, Scale: scale, Seed: seed,
		Verify: verify, CPUSpeedup: cpu, Coll: coll, Depgraph: true,
	}
	return w.Spec()
}

// serveAnalyticSweep answers a sweep from the analytic makespan curves
// of one instrumented baseline run: N design points, at most one
// simulation (zero once the instrumented run is in the persistent
// store). Predicted points report Source "analytic" and carry the
// instrumented run's hash — the content address of the data the
// prediction came from. Livelock mirrors the measured semantics: a
// predicted makespan at or past LivelockFactor× the base reports as
// livelocked with zero elapsed.
func (s *Server) serveAnalyticSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, k core.Knob) {
	axis := KnobName(k)
	if _, ok := (&tolerance.Curves{}).ByAxis(axis); !ok {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("service: analytic sweep models o, g, and L only (got %q)", req.Knob))
		return
	}
	spec, err := instrumentedSpec(req.App, req.Procs, req.Scale, req.Seed, req.Verify, req.CPUSpeedup, req.Coll)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	out, src, err := s.resolve(r.Context(), clientID(r), spec, nil)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if out.Err != nil {
		s.writeError(w, r, http.StatusInternalServerError, out.Err)
		return
	}
	if out.Res.Curves == nil {
		s.writeError(w, r, http.StatusInternalServerError,
			fmt.Errorf("service: %v has no analytic curves: %s", spec, out.Res.DepgraphErr))
		return
	}
	c, _ := out.Res.Curves.ByAxis(axis)
	base := c.Base()
	resp := &SweepResponse{
		App: req.App, Knob: req.Knob,
		Baseline: pointToJSON(out.Point),
		BaseHash: spec.Hash(),
		Cache:    CacheCounts{Total: 1},
	}
	switch src {
	case SourceDisk:
		resp.Cache.DiskHits++
	case SourceComputed:
		resp.Cache.Computed++
	case SourceCoalesced:
		resp.Cache.Coalesced++
	}
	for _, v := range req.Values {
		pred := c.Eval(sim.FromMicros(v))
		pt := PointJSON{Value: v}
		if base > 0 && pred >= base*core.LivelockFactor {
			pt.Livelocked = true
		} else {
			pt.ElapsedNs = int64(pred)
			if base > 0 {
				pt.Slowdown = float64(pred) / float64(base)
			}
		}
		resp.Points = append(resp.Points, SweepPoint{PointJSON: pt, Hash: resp.BaseHash, Source: SourceAnalytic})
	}
	s.writeAnalytic(w, r, spec, src, start, resp)
}

// writeAnalytic writes an analytic response plain, or over SSE (one
// progress tick for the instrumented run, then the result) so streaming
// clients see the same event protocol as a simulated plan.
func (s *Server) writeAnalytic(w http.ResponseWriter, r *http.Request, spec run.Spec, src string, start time.Time, resp any) {
	if !wantStream(r) {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	emit, err := sseWriter(w)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	_ = emit("progress", PlanEvent{
		Done: 1, Total: 1, Spec: spec.String(), Hash: spec.Hash(),
		Source: src, WallUs: time.Since(start).Microseconds(),
	})
	_ = emit("result", resp)
}

// handleTolerance resolves one instrumented baseline (content-addressed
// by its depgraph-keyed hash like any run) and reports its analytic
// makespan curves and per-axis tolerance figures — the whole sweep's
// answer from a single simulation. A run outside the model's validity
// region still answers 200, with the curves absent and depgraph_error
// explaining why.
func (s *Server) handleTolerance(w http.ResponseWriter, r *http.Request) {
	var req ToleranceRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	factor := req.Factor
	if factor == 0 {
		factor = tolerance.DefaultFactor
	}
	if factor < 1 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("service: tolerance factor %g < 1", factor))
		return
	}
	spec, err := instrumentedSpec(req.App, req.Procs, req.Scale, req.Seed, req.Verify, req.CPUSpeedup, req.Coll)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	out, src, err := s.resolve(r.Context(), clientID(r), spec, nil)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if out.Err != nil {
		s.writeError(w, r, http.StatusInternalServerError, out.Err)
		return
	}
	resp := ToleranceResponse{
		Spec:      SpecToJSON(out.Spec),
		Hash:      out.Spec.Hash(),
		Source:    src,
		Cached:    src != SourceComputed,
		WallUs:    time.Since(start).Microseconds(),
		ElapsedNs: int64(out.Res.Elapsed),
		Factor:    factor,
	}
	if cs := out.Res.Curves; cs != nil {
		resp.Curves = cs
		for _, axis := range []string{"o", "g", "L"} {
			c, _ := cs.ByAxis(axis)
			tol, bounded := c.Tolerance(factor)
			resp.Tolerances = append(resp.Tolerances, AxisToleranceJSON{
				Axis: axis, MaxDeltaUs: tol.Micros(), Bounded: bounded,
			})
		}
	} else {
		resp.DepgraphError = out.Res.DepgraphErr
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExperiment plans, resolves, and renders one paper artifact.
// The rendered text is byte-identical to cmd/repro's offline output for
// the same options, whether the runs computed or came from the cache.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts := req.Options.options()
	p, err := exp.PlanFor([]string{req.ID}, opts)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.servePlan(w, r, p, func(pr *planResult) (any, error) {
		tab, err := exp.Render(req.ID, opts, pr.store)
		if err != nil {
			return nil, err
		}
		return &ExperimentResponse{
			ID: req.ID,
			Table: TableJSON{
				ID: tab.ID, Title: tab.Title,
				Columns: tab.Columns, Rows: tab.Rows, Notes: tab.Notes,
			},
			Text:  tab.Text(),
			CSV:   tab.CSV(),
			Cache: pr.counts,
		}, nil
	})
}

// servePlan executes a plan for a request and writes the response
// built by finish, either plain JSON or as an SSE progress stream
// terminated by a result (or error) event.
func (s *Server) servePlan(w http.ResponseWriter, r *http.Request, p *run.Plan, finish func(*planResult) (any, error)) {
	client := clientID(r)
	ctx := r.Context()
	if !wantStream(r) {
		pr, err := s.executePlan(ctx, client, p, nil)
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		if pr.firstRunErr != nil {
			s.writeError(w, r, http.StatusInternalServerError, pr.firstRunErr)
			return
		}
		resp, err := finish(pr)
		if err != nil {
			s.writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	emit, err := sseWriter(w)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	pr, err := s.executePlan(ctx, client, p, func(ev PlanEvent) {
		_ = emit("progress", ev)
	})
	if err == nil && pr.firstRunErr != nil {
		err = pr.firstRunErr
	}
	if err != nil {
		_ = emit("error", ErrorResponse{Error: err.Error()})
		return
	}
	resp, err := finish(pr)
	if err != nil {
		_ = emit("error", ErrorResponse{Error: err.Error()})
		return
	}
	_ = emit("result", resp)
}

// sseWriter prepares a Server-Sent Events stream and returns an
// emitter. Every event is flushed immediately: progress is the point.
func sseWriter(w http.ResponseWriter) (func(event string, v any) error, error) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("service: response writer cannot stream")
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return func(event string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}, nil
}
