package run

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

// slowApp counts its executions and cancels a context partway through a
// plan, standing in for a client that disconnects mid-sweep.
type slowApp struct {
	runs   atomic.Int64
	cancel context.CancelFunc
	after  int64
}

func (a *slowApp) Name() string                     { return "slow" }
func (a *slowApp) PaperName() string                { return "Slow" }
func (a *slowApp) Description() string              { return "test app" }
func (a *slowApp) InputDesc(cfg apps.Config) string { return "none" }
func (a *slowApp) Run(cfg apps.Config) (apps.Result, error) {
	n := a.runs.Add(1)
	if a.cancel != nil && n == a.after {
		a.cancel()
	}
	return apps.Result{App: "slow", Procs: cfg.Procs, Elapsed: sim.Time(1000)}, nil
}

func ctxTestPlan(points int) *Plan {
	p := NewPlan()
	for i := 0; i < points; i++ {
		p.AddSweep(Spec{App: "slow", Procs: 2, Scale: 1, Seed: 1, Knob: core.KnobO, Value: float64(i + 1)}, false)
	}
	return p
}

// TestRunIntoContextCancel proves a canceled plan drains without
// leaking workers or hanging store waiters: the call returns ctx.Err(),
// every claimed spec completes (with the run's result or ctx.Err()),
// and runs stop shortly after cancellation.
func TestRunIntoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	app := &slowApp{cancel: cancel, after: 1} // cancel during the first run
	r := &Runner{
		Jobs:    1, // serial pool: cancellation lands before later specs start
		Resolve: func(string) (apps.App, error) { return app, nil },
	}
	p := ctxTestPlan(8)
	st := NewStore()
	err := r.RunIntoContext(ctx, st, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunIntoContext = %v, want context.Canceled", err)
	}
	// The baseline ran (it triggered the cancel); every spec the wave
	// claimed afterwards must still be complete — Get must not block and
	// must carry ctx.Err().
	ran := app.runs.Load()
	if ran >= int64(p.Size()) {
		t.Fatalf("all %d runs executed despite cancellation", ran)
	}
	canceled := 0
	for _, s := range p.Specs() {
		out, ok := st.Get(s) // must not hang
		if !ok {
			continue
		}
		if errors.Is(out.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatalf("no claimed spec completed with context.Canceled (ran=%d)", ran)
	}
}

// TestRunContextUncanceled proves the ctx path is the plain path when
// the context stays live.
func TestRunContextUncanceled(t *testing.T) {
	app := &slowApp{}
	r := &Runner{Jobs: 2, Resolve: func(string) (apps.App, error) { return app, nil }}
	st, err := r.RunContext(context.Background(), ctxTestPlan(3))
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	for _, want := range []float64{1, 2, 3} {
		s := Spec{App: "slow", Procs: 2, Scale: 1, Seed: 1, Knob: core.KnobO, Value: want}
		if _, err := st.Point(s); err != nil {
			t.Fatalf("point %g: %v", want, err)
		}
	}
}

// TestStorePut proves externally-resolved outcomes slot into a store
// exactly like executed ones, and that first publication wins.
func TestStorePut(t *testing.T) {
	st := NewStore()
	s := Spec{App: "slow", Procs: 2, Scale: 1, Seed: 1, Knob: core.KnobO, Value: 5, Verify: true}
	out := Outcome{Spec: s, Point: core.Point{Value: 5, Slowdown: 1.25, Elapsed: 1250}}
	if !st.Put(out) {
		t.Fatalf("first Put returned false")
	}
	if st.Put(Outcome{Spec: s, Point: core.Point{Slowdown: 99}}) {
		t.Fatalf("second Put of the same spec returned true")
	}
	got, err := st.Point(s)
	if err != nil {
		t.Fatalf("Point: %v", err)
	}
	if got.Slowdown != 1.25 {
		t.Fatalf("Point.Slowdown = %g, want the first Put's 1.25", got.Slowdown)
	}
	// Put normalizes: the swept spec's Verify flag is not part of the key.
	norm := s
	norm.Verify = false
	if _, ok := st.Get(norm); !ok {
		t.Fatalf("normalized spec missing after Put of unnormalized spec")
	}
}
