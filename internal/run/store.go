package run

import (
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
)

// Outcome is the recorded result of one executed Spec.
type Outcome struct {
	Spec Spec
	// Res is the full application result: always populated for baseline
	// runs, and for swept runs that completed (zero when livelocked).
	Res apps.Result
	// Point is the design-point measurement (slowdown, livelock flag);
	// for baseline runs it is the trivial Value=0, Slowdown=1 point.
	Point core.Point
	// Err reports a failed run (configuration or simulator errors;
	// livelock is not an error — see Point.Livelocked).
	Err error
}

// Store collects outcomes keyed by canonical Spec. It is safe for
// concurrent use: workers claim a spec before executing it, so a spec
// requested by several experiments — or by two overlapping plans running
// at once — executes exactly once (singleflight) while every other
// requester blocks on the in-flight entry.
type Store struct {
	mu       sync.Mutex
	entries  map[Spec]*entry
	executed int
	hits     int
}

type entry struct {
	done chan struct{} // closed when out is valid
	out  Outcome
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: map[Spec]*entry{}}
}

// claim registers s for execution. The second result is true when the
// caller owns the run and must call complete; false when another worker
// already executed or is executing it.
func (st *Store) claim(s Spec) (*entry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.entries[s]; ok {
		st.hits++
		return e, false
	}
	e := &entry{done: make(chan struct{})}
	st.entries[s] = e
	st.executed++
	return e, true
}

// complete publishes the outcome of a claimed entry.
func (st *Store) complete(e *entry, out Outcome) {
	e.out = out
	close(e.done)
}

// wait blocks until the entry's outcome is published.
func (st *Store) wait(e *entry) Outcome {
	<-e.done
	return e.out
}

// Put inserts an already-completed outcome, for callers that resolved
// the run outside the Runner's pool (the service daemon's persistent
// cache). The spec key is taken from out.Spec, normalized. It reports
// false — and changes nothing — when the spec is already present or in
// flight: first publication wins, matching singleflight semantics.
func (st *Store) Put(out Outcome) bool {
	out.Spec = out.Spec.norm()
	st.mu.Lock()
	if _, ok := st.entries[out.Spec]; ok {
		st.mu.Unlock()
		return false
	}
	e := &entry{done: make(chan struct{})}
	st.entries[out.Spec] = e
	st.mu.Unlock()
	st.complete(e, out)
	return true
}

// Get returns the completed outcome for a spec, blocking if the run is
// still in flight. The second result is false when the spec was never
// planned.
func (st *Store) Get(s Spec) (Outcome, bool) {
	s = s.norm()
	st.mu.Lock()
	e, ok := st.entries[s]
	st.mu.Unlock()
	if !ok {
		return Outcome{}, false
	}
	return st.wait(e), true
}

// Result returns the full application result for a spec, with a
// descriptive error when the run was never planned or failed.
func (st *Store) Result(s Spec) (apps.Result, error) {
	out, ok := st.Get(s)
	if !ok {
		return apps.Result{}, fmt.Errorf("run: %v was not in the executed plan", s.norm())
	}
	if out.Err != nil {
		return apps.Result{}, out.Err
	}
	return out.Res, nil
}

// Point returns the design-point measurement for a spec.
func (st *Store) Point(s Spec) (core.Point, error) {
	out, ok := st.Get(s)
	if !ok {
		return core.Point{}, fmt.Errorf("run: %v was not in the executed plan", s.norm())
	}
	if out.Err != nil {
		return core.Point{}, out.Err
	}
	return out.Point, nil
}

// Stats reports how many runs the store executed and how many requests
// were served from an already-claimed entry (cache hits).
func (st *Store) Stats() (executed, hits int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.executed, st.hits
}
