// Package run is the experiment-execution engine: experiments declare
// the set of simulation runs they need as a Plan of canonical Specs, and
// a Runner executes the Plan on a bounded worker pool, deduplicating
// identical runs in flight and collecting every outcome in a
// mutex-guarded Store. Each individual simulation stays single-goroutine
// and deterministic, so a Plan's results — and any table rendered from
// them — are bit-identical at every job count.
package run

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/logp"
	"repro/internal/splitc"
)

// Spec is the canonical key of one simulation run. Two runs with equal
// Specs (on the same machine parameters) are the same run; the Store
// executes each distinct Spec at most once.
type Spec struct {
	// App is the suite application's short name ("radix", "em3d-read").
	App string
	// Procs is the cluster size.
	Procs int
	// Scale is the input scale relative to the paper's data sets.
	Scale float64
	// Seed fixes all pseudo-randomness.
	Seed int64
	// Knob is the varied LogGP parameter; core.KnobNone marks a baseline
	// run on the unmodified machine.
	Knob core.Knob
	// Value is the knob setting (µs, or MB/s for core.KnobBW); zero for
	// baselines.
	Value float64
	// Verify runs the application self-check. Only baseline runs verify;
	// swept runs always normalize to false (core.Measure semantics).
	Verify bool
	// CPUSpeedup scales local computation (§5.5's processor-investment
	// runs); 0 and 1 both mean the machine's own speed and normalize to 0.
	CPUSpeedup float64
	// Profile attaches the stall-attribution profiler and fills
	// Result.Profile. Profiled runs key separately from unprofiled ones:
	// attribution is observation-only (identical virtual times), but the
	// distinction keeps Result reuse explicit.
	Profile bool
	// Fault is the run's fault scenario (zero = perfect wire). A faulted
	// run is never a baseline: its slowdown is measured against the same
	// spec with the zero scenario.
	Fault FaultSpec
	// Coll selects the splitc collective algorithms (zero = the
	// historical defaults). Runs with different selections key — and
	// cache — separately: the selection changes the schedule, so it
	// changes the result.
	Coll splitc.Collectives
	// Depgraph attaches the communication-DAG builder and fills
	// Result.Curves with the analytic makespan curves. Extraction is
	// observation-only (identical virtual times), but instrumented runs
	// key separately, exactly like Profile: the distinction keeps Result
	// reuse explicit. Incompatible with a faulted wire (Config rejects
	// the combination).
	Depgraph bool
}

// Baseline builds the canonical baseline Spec for an application
// configuration.
func Baseline(app string, procs int, scale float64, seed int64, verify bool) Spec {
	return Spec{App: app, Procs: procs, Scale: scale, Seed: seed, Knob: core.KnobNone, Verify: verify}.norm()
}

// IsBaseline reports whether the spec runs the unmodified machine.
func (s Spec) IsBaseline() bool { return s.Knob == core.KnobNone && !s.Fault.active() }

// norm canonicalizes the spec so that equal runs compare equal as map
// keys.
func (s Spec) norm() Spec {
	if s.CPUSpeedup == 1 {
		s.CPUSpeedup = 0
	}
	if s.IsBaseline() {
		s.Value = 0
	} else {
		s.Verify = false
	}
	return s
}

// BaselineSpec is the baseline this spec's slowdown and livelock bound
// are measured against: the same (app, procs, scale, seed) with no knob
// applied and no CPU speedup. verify carries the plan-level choice for
// baseline runs.
func (s Spec) BaselineSpec(verify bool) Spec {
	b := Baseline(s.App, s.Procs, s.Scale, s.Seed, verify)
	b.Profile = s.Profile
	b.Coll = s.Coll
	b.Depgraph = s.Depgraph
	return b
}

// Config builds the application configuration for the spec on a machine.
// The knob itself is applied by the executor (core.Measure), not here.
func (s Spec) Config(params logp.Params) apps.Config {
	return apps.Config{
		Procs:       s.Procs,
		Scale:       s.Scale,
		Params:      params,
		Seed:        s.Seed,
		Verify:      s.Verify,
		CPUSpeedup:  s.CPUSpeedup,
		Profile:     s.Profile,
		Collectives: s.Coll,
		Depgraph:    s.Depgraph,
	}
}

// String renders the spec for progress lines and errors.
func (s Spec) String() string {
	suffix := s.Fault.String()
	if s.CPUSpeedup != 0 {
		suffix += fmt.Sprintf(" cpu×%g", s.CPUSpeedup)
	}
	if s.Profile {
		suffix += " +prof"
	}
	if s.Depgraph {
		suffix += " +graph"
	}
	if !s.Coll.IsZero() {
		suffix += " " + s.Coll.String()
	}
	if s.IsBaseline() {
		return fmt.Sprintf("%s/p%d baseline%s", s.App, s.Procs, suffix)
	}
	if s.Knob == core.KnobNone {
		return fmt.Sprintf("%s/p%d%s", s.App, s.Procs, suffix)
	}
	return fmt.Sprintf("%s/p%d %v=%g%s", s.App, s.Procs, s.Knob, s.Value, suffix)
}
