package run

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/sim"
)

// FaultSpec is the canonical fault scenario of a Spec: a flat comparable
// struct, so faulted runs key and deduplicate in the Store exactly like
// knob settings do. The zero value is the perfect wire. Scenarios are
// expressed relative to the run's own baseline (DelayAtFrac) and expanded
// into a concrete fault.Plan by Wire once the baseline has executed.
type FaultSpec struct {
	// DelayProc, DelayAtFrac, and DelayUs describe a one-off processor
	// delay — the Afzal-style propagation probe: DelayUs microseconds
	// injected into processor DelayProc at DelayAtFrac of the baseline
	// makespan. Active when DelayUs > 0.
	DelayProc   int
	DelayAtFrac float64
	DelayUs     float64
	// DropProb drops each wire transmission independently with this
	// probability; DupProb duplicates likewise. Either requires Reliable.
	DropProb float64
	DupProb  float64
	// Reliable enables the AM reliability layer. It is measurable on its
	// own (DropProb 0): the protocol's sequencing and ack machinery has a
	// cost even on a lossless wire.
	Reliable bool
}

// active reports whether the scenario perturbs the run at all.
func (f FaultSpec) active() bool { return f != FaultSpec{} }

// Wire applies the scenario to a run configuration. baseline is the
// unfaulted run's makespan, which anchors DelayAtFrac; the plan inherits
// the run's seed through apps.NewWorld, so equal specs fault identically.
func (f FaultSpec) Wire(cfg apps.Config, baseline sim.Time) apps.Config {
	if !f.active() {
		return cfg
	}
	var plan fault.Plan
	if f.DelayUs > 0 {
		at := sim.Time(float64(baseline)*f.DelayAtFrac + 0.5)
		plan.ProcDelays = append(plan.ProcDelays, fault.ProcDelay{
			Proc: f.DelayProc, At: at, Extra: sim.FromMicros(f.DelayUs),
		})
	}
	if f.DropProb > 0 {
		plan.Drops = append(plan.Drops, fault.DropRule{Match: fault.Any(), Prob: f.DropProb})
	}
	if f.DupProb > 0 {
		plan.Dups = append(plan.Dups, fault.DupRule{Match: fault.Any(), Prob: f.DupProb})
	}
	if !plan.Empty() {
		cfg.FaultPlan = &plan
	}
	if f.Reliable {
		cfg.Reliability = am.Reliability{Enabled: true}
	}
	return cfg
}

// String renders the scenario for progress lines.
func (f FaultSpec) String() string {
	if !f.active() {
		return ""
	}
	s := ""
	if f.DelayUs > 0 {
		s += fmt.Sprintf(" delay[p%d@%g+%gµs]", f.DelayProc, f.DelayAtFrac, f.DelayUs)
	}
	if f.DropProb > 0 {
		s += fmt.Sprintf(" drop=%g", f.DropProb)
	}
	if f.DupProb > 0 {
		s += fmt.Sprintf(" dup=%g", f.DupProb)
	}
	if f.Reliable {
		s += " +rel"
	}
	return s
}
