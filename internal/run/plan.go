package run

// Plan is a deduplicated, ordered set of Specs plus the baseline→sweep
// dependencies the Runner needs to schedule them. Experiments build one
// Plan each; cmd/repro merges the Plans of every selected experiment so
// shared runs (Fig 5b and Table 5, Fig 6 and Table 6, every baseline)
// execute exactly once.
type Plan struct {
	order []Spec
	index map[Spec]int
	// dep maps a swept spec to the baseline spec providing its slowdown
	// denominator and livelock bound.
	dep map[Spec]Spec
	// adds counts every Add call, including duplicates, so callers can
	// report how much the plan deduplicated.
	adds int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{index: map[Spec]int{}, dep: map[Spec]Spec{}}
}

// add inserts a normalized spec, deduplicating. Returns the canonical
// spec (the map key callers should use against the Store).
func (p *Plan) add(s Spec) Spec {
	s = s.norm()
	p.adds++
	if _, ok := p.index[s]; !ok {
		p.index[s] = len(p.order)
		p.order = append(p.order, s)
	}
	return s
}

// AddBaseline declares a run on the unmodified machine.
func (p *Plan) AddBaseline(app string, procs int, scale float64, seed int64, verify bool) Spec {
	return p.add(Baseline(app, procs, scale, seed, verify))
}

// AddSweep declares a run at one design point, automatically declaring
// the baseline run it depends on (same app/procs/scale/seed, no knob).
// baselineVerify is the self-check choice for that baseline; the swept
// run itself never verifies.
func (p *Plan) AddSweep(s Spec, baselineVerify bool) Spec {
	s = s.norm()
	if s.IsBaseline() {
		return p.add(s)
	}
	b := p.add(s.BaselineSpec(baselineVerify))
	s = p.add(s)
	p.dep[s] = b
	return s
}

// Size is the number of distinct runs in the plan.
func (p *Plan) Size() int { return len(p.order) }

// Adds is the total number of Add calls, including duplicates; Adds -
// Size is the number of runs the plan deduplicated away.
func (p *Plan) Adds() int { return p.adds }

// Specs returns the distinct runs in insertion order.
func (p *Plan) Specs() []Spec {
	out := make([]Spec, len(p.order))
	copy(out, p.order)
	return out
}

// BaselineOf returns the baseline dependency of a swept spec.
func (p *Plan) BaselineOf(s Spec) (Spec, bool) {
	b, ok := p.dep[s.norm()]
	return b, ok
}

// Merge folds another plan's runs and dependencies into this one.
func (p *Plan) Merge(q *Plan) {
	if q == nil {
		return
	}
	for _, s := range q.order {
		p.add(s)
	}
	p.adds += q.adds - len(q.order) // count q's own duplicates too
	for s, b := range q.dep {
		if _, ok := p.dep[s]; !ok {
			p.dep[s] = b
		}
	}
}
