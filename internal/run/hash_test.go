package run

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/splitc"
)

// goldenHashes pins the canonical Spec hash across releases: the hashes
// key the persistent on-disk result cache, so a change here is a cache
// invalidation and must come with a hashVersion bump (never a silent
// re-keying). If this test fails after you changed Spec or its
// encoding, bump hashVersion in hash.go and re-pin.
var goldenHashes = []struct {
	spec Spec
	want string
}{
	{
		Baseline("radix", 32, 1.0/256, 1, false),
		"6d7a266fac1e78fb942db7e92db8543b00497bedc8a22fa6104870605829240f",
	},
	{
		Spec{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25},
		"4df2adf70c6107b8b330447edf3afd0673aad1fe59271b6b9b708c86ccdd1878",
	},
	{
		Spec{App: "em3d-read", Procs: 8, Scale: 0.00048828125, Seed: 7, Knob: core.KnobG, Value: 24.2, Profile: true},
		"0a429199bdc5d1a383d37c2e8e0db90c8a5d8f5a2bbfddacbe79d17bcc21eddf",
	},
	{
		Spec{App: "nowsort", Procs: 16, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobNone,
			Fault: FaultSpec{DelayProc: 3, DelayAtFrac: 0.5, DelayUs: 1000}},
		"1d3414a1ddfb758790c3259f131a2c5d2cd3a4c569ad14768bd2b7fe08e79d58",
	},
	{
		Spec{App: "sample", Procs: 64, Scale: 1.0 / 256, Seed: 2, Knob: core.KnobL, Value: 100,
			Coll: splitc.Collectives{Barrier: "flat", Broadcast: "chain", AllReduce: "recdouble"}},
		"cb4e67ab96557bb84af449698f4cf03408cc4bdd1df0a7e6fa2fed06d28564ab",
	},
}

func TestSpecHashGoldenVectors(t *testing.T) {
	for _, g := range goldenHashes {
		if got := g.spec.Hash(); got != g.want {
			t.Errorf("Hash(%v) = %s, want %s\ncanonical:\n%s", g.spec, got, g.want, g.spec.canonical())
		}
	}
}

// TestSpecHashNormalizes proves hashing and map-key equality agree: a
// spec and its normalized form address the same cache entry.
func TestSpecHashNormalizes(t *testing.T) {
	raw := Spec{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1,
		Knob: core.KnobO, Value: 25, Verify: true, CPUSpeedup: 1}
	if raw.Hash() != raw.norm().Hash() {
		t.Fatalf("hash of raw spec differs from its normalized form")
	}
	if raw.norm() == raw {
		t.Fatalf("test spec should not already be normalized")
	}
}

func TestSpecHashDistinguishesFields(t *testing.T) {
	base := Spec{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25}
	variants := []Spec{
		{App: "sample", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 16, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 512, Seed: 1, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 2, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobG, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 26},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25, Profile: true},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25, CPUSpeedup: 2},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25,
			Fault: FaultSpec{DropProb: 0.001, Reliable: true}},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25,
			Coll: splitc.Collectives{Barrier: "tree"}},
	}
	seen := map[string]Spec{base.Hash(): base}
	for _, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[h] = v
	}
}

// TestSpecHashCoversEveryField fails when Spec (or an embedded struct)
// gains a field the canonical encoding does not yet render — the guard
// that keeps Hash() from silently aliasing new run dimensions. Update
// canonical() AND bump hashVersion, then extend these counts.
func TestSpecHashCoversEveryField(t *testing.T) {
	for _, c := range []struct {
		typ  reflect.Type
		want int
	}{
		{reflect.TypeOf(Spec{}), 11},
		{reflect.TypeOf(FaultSpec{}), 6},
		{reflect.TypeOf(splitc.Collectives{}), 3},
	} {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%v has %d fields, canonical encoding renders %d: update Spec.canonical(), bump hashVersion, re-pin the golden vectors",
				c.typ, got, c.want)
		}
	}
}
