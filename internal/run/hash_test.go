package run

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/splitc"
)

// goldenHashes pins the canonical Spec hash across releases: the hashes
// key the persistent on-disk result cache, so a change here is a cache
// invalidation and must come with a hashVersion bump (never a silent
// re-keying). If this test fails after you changed Spec or its
// encoding, bump hashVersion in hash.go and re-pin.
var goldenHashes = []struct {
	spec Spec
	want string
}{
	{
		Baseline("radix", 32, 1.0/256, 1, false),
		"b62bf3ec62e1e623297518a38090da9ea4b78e6d7fab5cd2745554e315fec472",
	},
	{
		Spec{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25},
		"3df665ae36c0b57941bf3700fbee46b096647da8475f057301e8b1e5453726c9",
	},
	{
		Spec{App: "em3d-read", Procs: 8, Scale: 0.00048828125, Seed: 7, Knob: core.KnobG, Value: 24.2, Profile: true},
		"23cf259dff0b0eb509afce75e537ee4587f0d5d6a3e25437ef260f246c5c1eaf",
	},
	{
		Spec{App: "nowsort", Procs: 16, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobNone,
			Fault: FaultSpec{DelayProc: 3, DelayAtFrac: 0.5, DelayUs: 1000}},
		"b3ec4fbe6b2a5ae68124a73bb0c8c387179bfa3f798d05354baea8dd0f26604f",
	},
	{
		Spec{App: "sample", Procs: 64, Scale: 1.0 / 256, Seed: 2, Knob: core.KnobL, Value: 100,
			Coll: splitc.Collectives{Barrier: "flat", Broadcast: "chain", AllReduce: "recdouble"}},
		"8d3e575f039f28e0b855dc99b5236c940482e8dee8a87fd2da3a603a8c275907",
	},
}

func TestSpecHashGoldenVectors(t *testing.T) {
	for _, g := range goldenHashes {
		if got := g.spec.Hash(); got != g.want {
			t.Errorf("Hash(%v) = %s, want %s\ncanonical:\n%s", g.spec, got, g.want, g.spec.canonical())
		}
	}
}

// TestSpecHashNormalizes proves hashing and map-key equality agree: a
// spec and its normalized form address the same cache entry.
func TestSpecHashNormalizes(t *testing.T) {
	raw := Spec{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1,
		Knob: core.KnobO, Value: 25, Verify: true, CPUSpeedup: 1}
	if raw.Hash() != raw.norm().Hash() {
		t.Fatalf("hash of raw spec differs from its normalized form")
	}
	if raw.norm() == raw {
		t.Fatalf("test spec should not already be normalized")
	}
}

func TestSpecHashDistinguishesFields(t *testing.T) {
	base := Spec{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25}
	variants := []Spec{
		{App: "sample", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 16, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 512, Seed: 1, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 2, Knob: core.KnobO, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobG, Value: 25},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 26},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25, Profile: true},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25, CPUSpeedup: 2},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25,
			Fault: FaultSpec{DropProb: 0.001, Reliable: true}},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25,
			Coll: splitc.Collectives{Barrier: "tree"}},
		{App: "radix", Procs: 32, Scale: 1.0 / 256, Seed: 1, Knob: core.KnobO, Value: 25,
			Depgraph: true},
	}
	seen := map[string]Spec{base.Hash(): base}
	for _, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[h] = v
	}
}

// TestSpecHashCoversEveryField fails when Spec (or an embedded struct)
// gains a field the canonical encoding does not yet render — the guard
// that keeps Hash() from silently aliasing new run dimensions. Update
// canonical() AND bump hashVersion, then extend these counts.
func TestSpecHashCoversEveryField(t *testing.T) {
	for _, c := range []struct {
		typ  reflect.Type
		want int
	}{
		{reflect.TypeOf(Spec{}), 12},
		{reflect.TypeOf(FaultSpec{}), 6},
		{reflect.TypeOf(splitc.Collectives{}), 3},
	} {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%v has %d fields, canonical encoding renders %d: update Spec.canonical(), bump hashVersion, re-pin the golden vectors",
				c.typ, got, c.want)
		}
	}
}
