package run

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/core"
	"repro/internal/logp"
)

// Progress reports one completed run to the Runner's callback.
type Progress struct {
	// Done runs out of Total in the current plan (cached ones included).
	Done, Total int
	// Spec identifies the run that just completed.
	Spec Spec
	// Cached is true when the run was already in the store (a shared run
	// another experiment declared, or a duplicate claimed in flight).
	Cached bool
	// Wall is the real time the run took (zero when cached).
	Wall time.Duration
	// Err is the run's error, if any.
	Err error
}

// Runner executes Plans on a bounded worker pool. The zero value runs on
// the Berkeley NOW machine with GOMAXPROCS workers.
type Runner struct {
	// Jobs bounds concurrent simulations; 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Params is the machine every run starts from; zero means logp.NOW().
	Params logp.Params
	// Resolve maps an application name to its implementation; nil means
	// the paper suite (suite.ByName).
	Resolve func(string) (apps.App, error)
	// OnProgress, when non-nil, observes every completed run. It is
	// called from worker goroutines, one call at a time.
	OnProgress func(Progress)
}

func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (r *Runner) params() logp.Params {
	if r.Params == (logp.Params{}) {
		return logp.NOW()
	}
	return r.Params
}

func (r *Runner) resolve(name string) (apps.App, error) {
	if r.Resolve != nil {
		return r.Resolve(name)
	}
	return suite.ByName(name)
}

// Run executes a plan into a fresh store and returns it. The returned
// error is the first failed run in plan order (every run still executes,
// so partial results remain inspectable through the store).
func (r *Runner) Run(p *Plan) (*Store, error) {
	st := NewStore()
	err := r.RunInto(st, p)
	return st, err
}

// RunInto executes a plan against an existing store, skipping (and
// counting as cache hits) any runs the store already holds. Baselines
// run first — they provide every swept run's slowdown denominator and
// livelock bound — then all swept runs, each wave on the bounded pool.
func (r *Runner) RunInto(st *Store, p *Plan) error {
	var baselines, sweeps []Spec
	for _, s := range p.Specs() {
		if s.IsBaseline() {
			baselines = append(baselines, s)
		} else {
			sweeps = append(sweeps, s)
		}
	}
	prog := &progress{total: p.Size(), fn: r.OnProgress}
	r.wave(st, baselines, prog, func(s Spec) Outcome { return r.runBaseline(s) })
	r.wave(st, sweeps, prog, func(s Spec) Outcome { return r.runSweep(st, p, s) })
	for _, s := range p.Specs() {
		if out, ok := st.Get(s); ok && out.Err != nil {
			return fmt.Errorf("run: %v: %w", s, out.Err)
		}
	}
	return nil
}

// progress serializes OnProgress calls and the done count.
type progress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(Progress)
}

func (pr *progress) report(s Spec, cached bool, wall time.Duration, err error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.done++
	if pr.fn != nil {
		pr.fn(Progress{Done: pr.done, Total: pr.total, Spec: s, Cached: cached, Wall: wall, Err: err})
	}
}

// wave runs one batch of specs on the worker pool.
func (r *Runner) wave(st *Store, specs []Spec, prog *progress, exec func(Spec) Outcome) {
	if len(specs) == 0 {
		return
	}
	jobs := r.jobs()
	if jobs > len(specs) {
		jobs = len(specs)
	}
	work := make(chan Spec)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				e, owned := st.claim(s)
				if !owned {
					out := st.wait(e)
					prog.report(s, true, 0, out.Err)
					continue
				}
				start := time.Now()
				out := exec(s)
				st.complete(e, out)
				prog.report(s, false, time.Since(start), out.Err)
			}
		}()
	}
	for _, s := range specs {
		work <- s
	}
	close(work)
	wg.Wait()
}

// runBaseline executes an unmodified-machine run.
func (r *Runner) runBaseline(s Spec) Outcome {
	out := Outcome{Spec: s}
	a, err := r.resolve(s.App)
	if err != nil {
		out.Err = err
		return out
	}
	res, err := a.Run(s.Config(r.params()))
	if err != nil {
		out.Err = fmt.Errorf("baseline %s: %w", a.Name(), err)
		return out
	}
	out.Res = res
	out.Point = core.Point{Elapsed: res.Elapsed, Slowdown: 1}
	return out
}

// runSweep executes one design point against its completed baseline.
func (r *Runner) runSweep(st *Store, p *Plan, s Spec) Outcome {
	out := Outcome{Spec: s}
	base, ok := p.BaselineOf(s)
	if !ok {
		out.Err = fmt.Errorf("run: %v has no declared baseline (use Plan.AddSweep)", s)
		return out
	}
	baseOut, ok := st.Get(base)
	if !ok {
		out.Err = fmt.Errorf("run: baseline %v missing from store", base)
		return out
	}
	if baseOut.Err != nil {
		out.Err = fmt.Errorf("baseline %v: %w", base, baseOut.Err)
		return out
	}
	a, err := r.resolve(s.App)
	if err != nil {
		out.Err = err
		return out
	}
	cfg := s.Fault.Wire(s.Config(r.params()), baseOut.Res.Elapsed)
	out.Point, out.Res, out.Err = core.Measure(a, cfg, s.Knob, s.Value, baseOut.Res.Elapsed)
	return out
}

// Sweep measures one application across a sequence of settings of one
// knob — the parallel successor of the old serial core.Sweep. The
// baseline run provides the slowdown denominator and livelock bound;
// points execute concurrently on up to jobs workers (0 = GOMAXPROCS).
func Sweep(a apps.App, cfg apps.Config, k core.Knob, points []float64, jobs int) (apps.Result, []core.Point, error) {
	cfg = cfg.Norm()
	p := NewPlan()
	baseSpec := p.AddBaseline(a.Name(), cfg.Procs, cfg.Scale, cfg.Seed, cfg.Verify)
	specs := make([]Spec, len(points))
	for i, v := range points {
		specs[i] = p.AddSweep(Spec{
			App: a.Name(), Procs: cfg.Procs, Scale: cfg.Scale, Seed: cfg.Seed,
			Knob: k, Value: v, CPUSpeedup: cfg.CPUSpeedup,
		}, cfg.Verify)
	}
	r := &Runner{
		Jobs:    jobs,
		Params:  cfg.Params,
		Resolve: func(string) (apps.App, error) { return a, nil },
	}
	st, err := r.Run(p)
	if err != nil {
		return apps.Result{}, nil, err
	}
	base, err := st.Result(baseSpec)
	if err != nil {
		return apps.Result{}, nil, err
	}
	out := make([]core.Point, len(specs))
	for i, s := range specs {
		if out[i], err = st.Point(s); err != nil {
			return base, nil, err
		}
	}
	return base, out, nil
}
