package run

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/apps/suite"
	"repro/internal/core"
	"repro/internal/logp"
)

// Progress reports one completed run to the Runner's callback.
type Progress struct {
	// Done runs out of Total in the current plan (cached ones included).
	Done, Total int
	// Spec identifies the run that just completed.
	Spec Spec
	// Cached is true when the run was already in the store (a shared run
	// another experiment declared, or a duplicate claimed in flight).
	Cached bool
	// Wall is the real time the run took (zero when cached).
	Wall time.Duration
	// Err is the run's error, if any.
	Err error
}

// Runner executes Plans on a bounded worker pool. The zero value runs on
// the Berkeley NOW machine with GOMAXPROCS workers.
type Runner struct {
	// Jobs bounds concurrent simulations; 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Params is the machine every run starts from; zero means logp.NOW().
	Params logp.Params
	// Resolve maps an application name to its implementation; nil means
	// the paper suite (suite.ByName).
	Resolve func(string) (apps.App, error)
	// OnProgress, when non-nil, observes every completed run. It is
	// called from worker goroutines, one call at a time.
	OnProgress func(Progress)
}

func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (r *Runner) params() logp.Params {
	if r.Params == (logp.Params{}) {
		return logp.NOW()
	}
	return r.Params
}

func (r *Runner) resolve(name string) (apps.App, error) {
	if r.Resolve != nil {
		return r.Resolve(name)
	}
	return suite.ByName(name)
}

// Run executes a plan into a fresh store and returns it. The returned
// error is the first failed run in plan order (every run still executes,
// so partial results remain inspectable through the store).
func (r *Runner) Run(p *Plan) (*Store, error) {
	st := NewStore()
	err := r.RunInto(st, p)
	return st, err
}

// RunContext is Run with cancellation: see RunIntoContext.
func (r *Runner) RunContext(ctx context.Context, p *Plan) (*Store, error) {
	st := NewStore()
	err := r.RunIntoContext(ctx, st, p)
	return st, err
}

// RunInto executes a plan against an existing store, skipping (and
// counting as cache hits) any runs the store already holds. Baselines
// run first — they provide every swept run's slowdown denominator and
// livelock bound — then all swept runs, each wave on the bounded pool.
func (r *Runner) RunInto(st *Store, p *Plan) error {
	return r.RunIntoContext(context.Background(), st, p)
}

// RunIntoContext is RunInto with cancellation. A simulation already
// executing when ctx is canceled runs to completion (the simulator has
// no preemption points — a run is one synchronous computation), but no
// further run starts: every remaining claimed spec completes immediately
// with ctx.Err() so concurrent waiters never hang, the worker pool
// drains, and the call returns ctx.Err(). Specs the canceled plan never
// claimed stay absent from the store and can be claimed by a later plan.
func (r *Runner) RunIntoContext(ctx context.Context, st *Store, p *Plan) error {
	var baselines, sweeps []Spec
	for _, s := range p.Specs() {
		if s.IsBaseline() {
			baselines = append(baselines, s)
		} else {
			sweeps = append(sweeps, s)
		}
	}
	prog := &progress{total: p.Size(), fn: r.OnProgress}
	r.wave(ctx, st, baselines, prog, func(s Spec) Outcome { return r.runBaseline(s) })
	r.wave(ctx, st, sweeps, prog, func(s Spec) Outcome { return r.runSweep(st, p, s) })
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, s := range p.Specs() {
		if out, ok := st.Get(s); ok && out.Err != nil {
			return fmt.Errorf("run: %v: %w", s, out.Err)
		}
	}
	return nil
}

// progress serializes OnProgress calls and the done count.
type progress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(Progress)
}

func (pr *progress) report(s Spec, cached bool, wall time.Duration, err error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.done++
	if pr.fn != nil {
		pr.fn(Progress{Done: pr.done, Total: pr.total, Spec: s, Cached: cached, Wall: wall, Err: err})
	}
}

// wave runs one batch of specs on the worker pool. After ctx is
// canceled, remaining specs are still claimed but complete immediately
// with ctx.Err() instead of executing, so every store waiter unblocks.
func (r *Runner) wave(ctx context.Context, st *Store, specs []Spec, prog *progress, exec func(Spec) Outcome) {
	if len(specs) == 0 {
		return
	}
	jobs := r.jobs()
	if jobs > len(specs) {
		jobs = len(specs)
	}
	work := make(chan Spec)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				e, owned := st.claim(s)
				if !owned {
					out := st.wait(e)
					prog.report(s, true, 0, out.Err)
					continue
				}
				if err := ctx.Err(); err != nil {
					out := Outcome{Spec: s, Err: err}
					st.complete(e, out)
					prog.report(s, false, 0, err)
					continue
				}
				start := time.Now()
				out := exec(s)
				st.complete(e, out)
				prog.report(s, false, time.Since(start), out.Err)
			}
		}()
	}
	for _, s := range specs {
		work <- s
	}
	close(work)
	wg.Wait()
}

// runBaseline executes an unmodified-machine run.
func (r *Runner) runBaseline(s Spec) Outcome {
	out := Outcome{Spec: s}
	a, err := r.resolve(s.App)
	if err != nil {
		out.Err = err
		return out
	}
	res, err := a.Run(s.Config(r.params()))
	if err != nil {
		out.Err = fmt.Errorf("baseline %s: %w", a.Name(), err)
		return out
	}
	out.Res = res
	out.Point = core.Point{Elapsed: res.Elapsed, Slowdown: 1}
	return out
}

// runSweep executes one design point against its completed baseline.
func (r *Runner) runSweep(st *Store, p *Plan, s Spec) Outcome {
	base, ok := p.BaselineOf(s)
	if !ok {
		return Outcome{Spec: s, Err: fmt.Errorf("run: %v has no declared baseline (use Plan.AddSweep)", s)}
	}
	baseOut, ok := st.Get(base)
	if !ok {
		return Outcome{Spec: s, Err: fmt.Errorf("run: baseline %v missing from store", base)}
	}
	return r.ExecSweep(s, baseOut)
}

// ExecBaseline synchronously executes one unmodified-machine run on the
// calling goroutine — the single-spec executor seam for schedulers that
// own their own worker pool (the service daemon). The runner's Jobs
// field is not consulted.
func (r *Runner) ExecBaseline(s Spec) Outcome {
	return r.runBaseline(s.norm())
}

// ExecSweep synchronously executes one design point against its
// already-executed baseline outcome (normally ExecBaseline's result for
// s.BaselineSpec). Like ExecBaseline it is the pool-free executor seam.
func (r *Runner) ExecSweep(s Spec, base Outcome) Outcome {
	s = s.norm()
	out := Outcome{Spec: s}
	if base.Err != nil {
		out.Err = fmt.Errorf("baseline %v: %w", base.Spec, base.Err)
		return out
	}
	a, err := r.resolve(s.App)
	if err != nil {
		out.Err = err
		return out
	}
	cfg := s.Fault.Wire(s.Config(r.params()), base.Res.Elapsed)
	out.Point, out.Res, out.Err = core.Measure(a, cfg, s.Knob, s.Value, base.Res.Elapsed)
	return out
}

// Sweep measures one application across a sequence of settings of one
// knob — the parallel successor of the old serial core.Sweep. The
// baseline run provides the slowdown denominator and livelock bound;
// points execute concurrently on up to jobs workers (0 = GOMAXPROCS).
func Sweep(a apps.App, cfg apps.Config, k core.Knob, points []float64, jobs int) (apps.Result, []core.Point, error) {
	cfg = cfg.Norm()
	p := NewPlan()
	baseSpec := p.AddBaseline(a.Name(), cfg.Procs, cfg.Scale, cfg.Seed, cfg.Verify)
	specs := make([]Spec, len(points))
	for i, v := range points {
		specs[i] = p.AddSweep(Spec{
			App: a.Name(), Procs: cfg.Procs, Scale: cfg.Scale, Seed: cfg.Seed,
			Knob: k, Value: v, CPUSpeedup: cfg.CPUSpeedup,
		}, cfg.Verify)
	}
	r := &Runner{
		Jobs:    jobs,
		Params:  cfg.Params,
		Resolve: func(string) (apps.App, error) { return a, nil },
	}
	st, err := r.Run(p)
	if err != nil {
		return apps.Result{}, nil, err
	}
	base, err := st.Result(baseSpec)
	if err != nil {
		return apps.Result{}, nil, err
	}
	out := make([]core.Point, len(specs))
	for i, s := range specs {
		if out[i], err = st.Point(s); err != nil {
			return base, nil, err
		}
	}
	return base, out, nil
}
