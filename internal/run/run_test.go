package run

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/radix"
	"repro/internal/core"
	"repro/internal/splitc"
)

func testSpec(v float64) Spec {
	return Spec{App: "radix", Procs: 4, Scale: 0.0003, Seed: 1, Knob: core.KnobO, Value: v}
}

func TestSpecNormalization(t *testing.T) {
	// CPUSpeedup 1 and 0 are the same run; swept specs never verify;
	// baselines carry no knob value.
	a := Spec{App: "radix", Procs: 4, Scale: 0.5, Seed: 1, Knob: core.KnobO, Value: 10, Verify: true, CPUSpeedup: 1}
	b := Spec{App: "radix", Procs: 4, Scale: 0.5, Seed: 1, Knob: core.KnobO, Value: 10}
	if a.norm() != b.norm() {
		t.Errorf("%+v and %+v should normalize equal", a.norm(), b.norm())
	}
	base := Spec{App: "radix", Procs: 4, Scale: 0.5, Seed: 1, Knob: core.KnobNone, Value: 99}.norm()
	if base.Value != 0 || !base.IsBaseline() {
		t.Errorf("baseline did not drop its value: %+v", base)
	}
}

func TestPlanDedupAndDependencies(t *testing.T) {
	p := NewPlan()
	s := p.AddSweep(testSpec(10), false)
	p.AddSweep(testSpec(10), false) // duplicate
	p.AddSweep(testSpec(50), false)
	// 2 sweeps + 1 shared baseline.
	if p.Size() != 3 {
		t.Fatalf("plan size = %d, want 3", p.Size())
	}
	if p.Adds() <= p.Size() {
		t.Errorf("Adds() = %d, want > Size() for a deduplicated plan", p.Adds())
	}
	b, ok := p.BaselineOf(s)
	if !ok || !b.IsBaseline() || b.App != "radix" {
		t.Fatalf("BaselineOf = %+v, %v", b, ok)
	}

	q := NewPlan()
	q.AddSweep(testSpec(10), false) // shared with p
	q.AddSweep(testSpec(100), false)
	merged := NewPlan()
	merged.Merge(p)
	merged.Merge(q)
	// baseline + {10, 50, 100}.
	if merged.Size() != 4 {
		t.Errorf("merged size = %d, want 4", merged.Size())
	}
	if _, ok := merged.BaselineOf(testSpec(100)); !ok {
		t.Error("merge dropped q's baseline dependency")
	}
}

func TestRunnerExecutesPlan(t *testing.T) {
	p := NewPlan()
	specs := []Spec{
		p.AddSweep(testSpec(0), false),
		p.AddSweep(testSpec(10), false),
		p.AddSweep(testSpec(50), false),
	}
	var mu sync.Mutex
	var events []Progress
	r := &Runner{Jobs: 4, OnProgress: func(pr Progress) {
		mu.Lock()
		events = append(events, pr)
		mu.Unlock()
	}}
	st, err := r.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := st.Result(specs[0].BaselineSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if base.Elapsed == 0 {
		t.Fatal("zero baseline")
	}
	var prev float64
	for _, s := range specs {
		pt, err := st.Point(s)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Slowdown <= prev {
			t.Errorf("slowdown not increasing at Δo=%g: %v after %v", s.Value, pt.Slowdown, prev)
		}
		prev = pt.Slowdown
	}
	if len(events) != p.Size() {
		t.Errorf("progress reported %d runs, want %d", len(events), p.Size())
	}
	last := events[len(events)-1]
	if last.Done != p.Size() || last.Total != p.Size() {
		t.Errorf("final progress = %d/%d, want %d/%d", last.Done, last.Total, p.Size(), p.Size())
	}
}

func TestStoreSingleflightAcrossPlans(t *testing.T) {
	p := NewPlan()
	p.AddSweep(testSpec(10), false)
	r := &Runner{Jobs: 2}
	st, err := r.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	executed, hits := st.Stats()
	if executed != 2 || hits != 0 {
		t.Fatalf("first plan: executed %d, hits %d", executed, hits)
	}
	// A second, overlapping plan against the same store executes only the
	// new design point.
	q := NewPlan()
	q.AddSweep(testSpec(10), false)
	q.AddSweep(testSpec(50), false)
	if err := r.RunInto(st, q); err != nil {
		t.Fatal(err)
	}
	executed, hits = st.Stats()
	if executed != 3 {
		t.Errorf("executed %d runs total, want 3 (baseline, Δo=10, Δo=50)", executed)
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (shared baseline and Δo=10)", hits)
	}
}

func TestRunnerReportsUnknownApp(t *testing.T) {
	p := NewPlan()
	p.AddBaseline("no-such-app", 4, 0.0003, 1, false)
	st, err := (&Runner{}).Run(p)
	if err == nil {
		t.Fatal("unknown app did not error")
	}
	out, ok := st.Get(Baseline("no-such-app", 4, 0.0003, 1, false))
	if !ok || out.Err == nil {
		t.Errorf("store outcome = %+v, %v; want recorded error", out, ok)
	}
}

func TestStoreUnplannedSpec(t *testing.T) {
	st := NewStore()
	if _, err := st.Result(testSpec(10)); err == nil {
		t.Error("Result on an unplanned spec should error")
	}
	if _, err := st.Point(testSpec(10)); err == nil {
		t.Error("Point on an unplanned spec should error")
	}
}

func TestSweepMonotoneOverhead(t *testing.T) {
	// The parallel successor of the old serial core.Sweep keeps its
	// contract: baseline denominator, monotone slowdowns, jobs-invariant.
	cfg := apps.Config{Procs: 4, Scale: 0.0003, Seed: 1}
	base, pts, err := Sweep(radix.New(), cfg, core.KnobO, []float64{0, 10, 50}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if base.Elapsed == 0 {
		t.Fatal("zero baseline")
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Slowdown < 0.99 || pts[0].Slowdown > 1.01 {
		t.Errorf("Δo=0 slowdown = %v, want 1", pts[0].Slowdown)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Slowdown <= pts[i-1].Slowdown {
			t.Errorf("slowdown not increasing: %v then %v", pts[i-1].Slowdown, pts[i].Slowdown)
		}
	}
	// And the same sweep serially must agree exactly.
	_, serial, err := Sweep(radix.New(), cfg, core.KnobO, []float64{0, 10, 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i] != serial[i] {
			t.Errorf("point %d differs across job counts: %+v vs %+v", i, pts[i], serial[i])
		}
	}
}

func TestSpecString(t *testing.T) {
	for s, want := range map[Spec]string{
		Baseline("radix", 32, 0.5, 1, false): "radix/p32 baseline",
		testSpec(20):                         "radix/p4 overhead=20",
	} {
		if got := fmt.Sprint(s); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSpecCollKeysSeparately(t *testing.T) {
	// Runs under different collective selections are different runs: the
	// selection changes the schedule, so it must change the Store key.
	a := testSpec(10)
	b := testSpec(10)
	b.Coll = splitc.Collectives{Barrier: "tree"}
	if a.norm() == b.norm() {
		t.Error("specs with different collective selections compare equal")
	}
	// The baseline dependency stays within the selection: a tuned sweep's
	// slowdown is measured against the tuned baseline.
	base := b.BaselineSpec(false)
	if base.Coll != b.Coll {
		t.Errorf("BaselineSpec dropped the selection: %+v", base)
	}
	if got := b.String(); !strings.Contains(got, "bar=tree") {
		t.Errorf("String() = %q, want the selection rendered", got)
	}
}
