package run

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// hashVersion is the canonical-encoding version baked into every hash.
// Bump it whenever Spec (or an embedded type) gains a field or changes
// the meaning of an existing one: old on-disk cache entries then stop
// matching instead of silently aliasing different runs. The golden
// vectors in hash_test.go pin the encoding release-to-release.
const hashVersion = "repro/run.Spec/v2"

// Hash is the canonical, process-stable content address of the run the
// spec describes. Equal specs (after normalization) hash equally in
// every process, on every platform, across releases — it is the key of
// the service's persistent result cache, so its stability is a
// compatibility promise, enforced by golden-vector tests.
//
// The hash covers every Spec field (including the fault scenario and
// the collective selection) but not the machine: a Runner's Params are
// the deployment's fixed baseline, exactly as in the in-memory Store.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.canonical()))
	return hex.EncodeToString(sum[:])
}

// canonical renders the normalized spec as a versioned, line-oriented
// encoding with exact (shortest round-trip) float formatting. Every
// field is rendered unconditionally: omitting zero values would let a
// future default change alias two historically distinct encodings.
func (s Spec) canonical() string {
	s = s.norm()
	var b strings.Builder
	b.WriteString(hashVersion)
	wr := func(k, v string) {
		b.WriteByte('\n')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	wr("app", s.App)
	wr("procs", strconv.Itoa(s.Procs))
	wr("scale", f(s.Scale))
	wr("seed", strconv.FormatInt(s.Seed, 10))
	wr("knob", strconv.Itoa(int(s.Knob)))
	wr("value", f(s.Value))
	wr("verify", strconv.FormatBool(s.Verify))
	wr("cpu", f(s.CPUSpeedup))
	wr("profile", strconv.FormatBool(s.Profile))
	wr("fault.delayproc", strconv.Itoa(s.Fault.DelayProc))
	wr("fault.delayatfrac", f(s.Fault.DelayAtFrac))
	wr("fault.delayus", f(s.Fault.DelayUs))
	wr("fault.dropprob", f(s.Fault.DropProb))
	wr("fault.dupprob", f(s.Fault.DupProb))
	wr("fault.reliable", strconv.FormatBool(s.Fault.Reliable))
	wr("coll.barrier", s.Coll.Barrier)
	wr("coll.broadcast", s.Coll.Broadcast)
	wr("coll.allreduce", s.Coll.AllReduce)
	wr("depgraph", strconv.FormatBool(s.Depgraph))
	return b.String()
}

// ParseKnob maps a wire name to a knob, accepting both the short forms
// the service API uses ("o", "g", "L", "bw") and Knob.String()'s long
// names. The empty string and "baseline" mean no knob.
func ParseKnob(name string) (core.Knob, error) {
	switch strings.ToLower(name) {
	case "", "baseline", "none":
		return core.KnobNone, nil
	case "o", "overhead":
		return core.KnobO, nil
	case "g", "gap":
		return core.KnobG, nil
	case "l", "latency":
		return core.KnobL, nil
	case "bw", "bandwidth", "bulk":
		return core.KnobBW, nil
	}
	return core.KnobNone, fmt.Errorf("run: unknown knob %q (want o, g, L, or bw)", name)
}
