// Command repro regenerates the paper's tables and figures on the
// simulated cluster.
//
// All selected experiments are merged into one deduplicated run plan and
// executed on a bounded worker pool before any table is rendered, so
// runs shared between artifacts (Fig 5b and Table 5, Fig 6 and Table 6,
// every baseline) execute exactly once. Tables are bit-identical at
// every -jobs setting; parallelism only changes wall-clock time.
//
// Usage:
//
//	repro -list
//	repro -exp fig5b [-procs 32] [-scale 0.00390625] [-apps radix,sample] [-jobs 8]
//	repro -exp all -quick -csv -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (table1..fig8) or 'all' (everything except the hours-long 'scale')")
		list    = flag.Bool("list", false, "list available experiments")
		procs   = flag.Int("procs", 32, "cluster size for single-size experiments")
		scale   = flag.Float64("scale", 1.0/256, "input scale relative to the paper's data sets")
		seed    = flag.Int64("seed", 1, "random seed")
		appsCSV = flag.String("apps", "", "comma-separated application subset (default: all ten)")
		quick   = flag.Bool("quick", false, "trim sweep points for a fast pass")
		verify  = flag.Bool("verify", false, "run application self-checks during baselines")
		jobs    = flag.Int("jobs", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir  = flag.String("out", "", "write per-experiment files into this directory")
		quiet   = flag.Bool("quiet", false, "suppress the live progress line and run summary")
	)
	flag.Parse()

	if *list {
		for _, e := range repro.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp <id>|all required (see -list)")
		os.Exit(2)
	}

	opts := repro.Options{
		Procs:  *procs,
		Scale:  *scale,
		Seed:   *seed,
		Quick:  *quick,
		Verify: *verify,
		Jobs:   *jobs,
	}
	if *appsCSV != "" {
		opts.Apps = strings.Split(*appsCSV, ",")
	}

	var ids []string
	if *expID == "all" {
		for _, e := range repro.Experiments() {
			// The scale experiment is explicit-only: its full ladder runs
			// million-processor simulations for hours, and its -apps
			// namespace is the scalekern kernels, not the paper suite.
			if e.ID == "scale" {
				continue
			}
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expID, ",")
	}

	// Phase 1: one merged plan for every selected experiment.
	plan, err := repro.PlanExperiments(ids, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}

	// Phase 2: execute the plan on the worker pool, narrating progress.
	store := repro.NewRunStore()
	if plan.Size() > 0 {
		tracker := newTracker(*quiet)
		runner := repro.NewRunner(opts, tracker.observe)
		start := time.Now()
		err := runner.RunInto(store, plan)
		tracker.finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			tracker.summarize(os.Stderr, plan, time.Since(start), effectiveJobs(*jobs))
		}
	}

	// Phase 3: render every table from the completed store.
	for _, id := range ids {
		start := time.Now()
		tab, err := repro.RenderExperiment(id, opts, store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			os.Exit(1)
		}
		body := tab.Text()
		if *csvOut {
			body = tab.CSV()
		}
		if *outDir != "" {
			ext := ".txt"
			if *csvOut {
				ext = ".csv"
			}
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, id+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-8s -> %s (rendered in %v)\n", id, path, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(body)
		fmt.Println()
	}
}

func effectiveJobs(jobs int) int {
	if jobs > 0 {
		return jobs
	}
	return runtime.GOMAXPROCS(0)
}

// tracker renders the live progress line and accumulates per-run
// wall-clock statistics.
type tracker struct {
	mu     sync.Mutex
	quiet  bool
	walls  []time.Duration
	names  []string
	cached int
	wrote  bool
}

func newTracker(quiet bool) *tracker { return &tracker{quiet: quiet} }

func (t *tracker) observe(p repro.RunProgress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p.Cached {
		t.cached++
	} else {
		t.walls = append(t.walls, p.Wall)
		t.names = append(t.names, p.Spec.String())
	}
	if t.quiet {
		return
	}
	fmt.Fprintf(os.Stderr, "\r\033[K[%d/%d] %v (%v)", p.Done, p.Total, p.Spec, p.Wall.Round(time.Millisecond))
	t.wrote = true
}

// finish terminates the progress line.
func (t *tracker) finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrote {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// summarize prints executed-vs-reused counts and per-run wall statistics.
func (t *tracker) summarize(w *os.File, plan *repro.RunPlan, wall time.Duration, jobs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.walls) == 0 {
		return
	}
	var total, max time.Duration
	maxName := ""
	for i, d := range t.walls {
		total += d
		if d > max {
			max, maxName = d, t.names[i]
		}
	}
	sorted := append([]time.Duration(nil), t.walls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	dedup := plan.Adds() - plan.Size()
	fmt.Fprintf(w, "repro: executed %d runs in %v (jobs=%d); %d declarations deduplicated, %d store hits\n",
		len(t.walls), wall.Round(time.Millisecond), jobs, dedup, t.cached)
	fmt.Fprintf(w, "repro: per-run wall clock: mean %v, median %v, max %v (%s); pool busy %.0f%%\n",
		(total / time.Duration(len(t.walls))).Round(time.Millisecond),
		median.Round(time.Millisecond),
		max.Round(time.Millisecond), maxName,
		100*float64(total)/float64(wall*time.Duration(jobs)))
}
