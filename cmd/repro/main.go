// Command repro regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	repro -list
//	repro -exp fig5b [-procs 32] [-scale 0.00390625] [-apps radix,sample]
//	repro -exp all -quick -csv -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (table1..fig8) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		procs   = flag.Int("procs", 32, "cluster size for single-size experiments")
		scale   = flag.Float64("scale", 1.0/256, "input scale relative to the paper's data sets")
		seed    = flag.Int64("seed", 1, "random seed")
		appsCSV = flag.String("apps", "", "comma-separated application subset (default: all ten)")
		quick   = flag.Bool("quick", false, "trim sweep points for a fast pass")
		verify  = flag.Bool("verify", false, "run application self-checks during baselines")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir  = flag.String("out", "", "write per-experiment files into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range repro.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp <id>|all required (see -list)")
		os.Exit(2)
	}

	opts := repro.Options{
		Procs:  *procs,
		Scale:  *scale,
		Seed:   *seed,
		Quick:  *quick,
		Verify: *verify,
	}
	if *appsCSV != "" {
		opts.Apps = strings.Split(*appsCSV, ",")
	}

	var ids []string
	if *expID == "all" {
		for _, e := range repro.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expID, ",")
	}

	for _, id := range ids {
		start := time.Now()
		tab, err := repro.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			os.Exit(1)
		}
		body := tab.Text()
		if *csvOut {
			body = tab.CSV()
		}
		if *outDir != "" {
			ext := ".txt"
			if *csvOut {
				ext = ".csv"
			}
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, id+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-8s -> %s (%v)\n", id, path, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(body)
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
