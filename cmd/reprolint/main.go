// Command reprolint runs the determinism-invariant analyzer suite
// (internal/analysis) over the repository and exits non-zero on any
// finding, making the invariants a CI gate:
//
//	go run ./cmd/reprolint ./...
//
// Exit codes: 0 clean, 1 findings, 2 load or usage errors. Findings
// print one per line as file:line:col: analyzer: message, followed by
// a per-analyzer summary. Intentional exceptions are annotated in the
// source with //lint:allow <analyzer> <reason> (see DESIGN.md
// "Determinism invariants").
//
// Flags:
//
//	-jobs N    spread package loading/checking over N workers (default
//	           one per CPU; the report is byte-identical at any value)
//	-json F    additionally write the findings as a JSON array to F
//	           ("-" for stdout): {file, line, col, analyzer, message}
//	-gha       additionally emit GitHub Actions ::error workflow
//	           commands, so findings annotate the offending lines on PRs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
)

// jsonFinding is the machine-readable form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jobs := flag.Int("jobs", runtime.NumCPU(), "worker pool size for package loading/checking")
	jsonOut := flag.String("json", "", "write findings as JSON to this file (\"-\" for stdout)")
	gha := flag.Bool("gha", false, "emit GitHub Actions ::error annotations for findings")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reprolint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	analyzers := analysis.All()
	start := time.Now()
	rep, err := analysis.RunJobs(cwd, patterns, analyzers, *jobs)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	for _, f := range rep.Findings {
		fmt.Printf("%s:%d:%d: %s: %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if *gha {
		for _, f := range rep.Findings {
			// GitHub Actions workflow command; the runner attaches the
			// message to the file/line in the PR diff view.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=reprolint %s::%s\n",
				relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, cwd, rep.Findings); err != nil {
			fatal(err)
		}
	}
	if n := len(rep.Findings); n > 0 {
		fmt.Printf("reprolint: %d finding(s) in %d package(s): %s\n",
			n, rep.Packages, strings.Join(rep.Counts(analyzers), ", "))
		os.Exit(1)
	}
	fmt.Printf("reprolint: ok — %d analyzers over %d packages, no findings (%.2fs, %d jobs)\n",
		len(analyzers), rep.Packages, elapsed.Seconds(), *jobs)
}

func writeJSON(path, base string, findings []analysis.Finding) error {
	// Always an array, [] rather than null when clean, so consumers can
	// iterate without a presence check.
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relPath(base, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprolint:", err)
	os.Exit(2)
}
