// Command reprolint runs the determinism-invariant analyzer suite
// (internal/analysis) over the repository and exits non-zero on any
// finding, making the invariants a CI gate:
//
//	go run ./cmd/reprolint ./...
//
// Exit codes: 0 clean, 1 findings, 2 load or usage errors. Findings
// print one per line as file:line:col: analyzer: message, followed by
// a per-analyzer summary. Intentional exceptions are annotated in the
// source with //lint:allow <analyzer> <reason> (see DESIGN.md
// "Determinism invariants").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reprolint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	analyzers := analysis.All()
	rep, err := analysis.Run(cwd, patterns, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range rep.Findings {
		fmt.Printf("%s:%d:%d: %s: %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if n := len(rep.Findings); n > 0 {
		fmt.Printf("reprolint: %d finding(s) in %d package(s): %s\n",
			n, rep.Packages, strings.Join(rep.Counts(analyzers), ", "))
		os.Exit(1)
	}
	fmt.Printf("reprolint: ok — %d analyzers over %d packages, no findings\n",
		len(analyzers), rep.Packages)
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprolint:", err)
	os.Exit(2)
}
