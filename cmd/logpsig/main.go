// Command logpsig runs the LogP-signature calibration microbenchmark
// against a machine with chosen deltas and prints the measured
// characteristics — the tool behind Figure 3 and Table 2.
//
// Usage:
//
//	logpsig                 # calibrate the baseline Berkeley NOW
//	logpsig -dO 50 -dL 25   # with 50µs added overhead, 25µs added latency
//	logpsig -signature      # also print the Figure 3 signature curves
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/calib"
	"repro/internal/sim"
)

func main() {
	var (
		dO    = flag.Float64("dO", 0, "added overhead per send and receive (µs)")
		dG    = flag.Float64("dG", 0, "added NIC gap (µs)")
		dL    = flag.Float64("dL", 0, "added latency (µs)")
		bwCap = flag.Float64("bw", 0, "bulk bandwidth cap (MB/s, 0 = machine rate)")
		sig   = flag.Bool("signature", false, "print the LogP signature curves")
	)
	flag.Parse()

	params := repro.NOW()
	params.DeltaO = repro.FromMicros(*dO)
	params.DeltaG = repro.FromMicros(*dG)
	params.DeltaL = repro.FromMicros(*dL)
	params.BulkBandwidthMBs = *bwCap

	m, err := repro.Calibrate(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logpsig: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("machine   : %v\n", params)
	fmt.Printf("o_send    : %6.2f µs\n", m.OSend.Micros())
	fmt.Printf("o_recv    : %6.2f µs\n", m.ORecv.Micros())
	fmt.Printf("o (avg)   : %6.2f µs\n", m.O.Micros())
	fmt.Printf("g         : %6.2f µs\n", m.G.Micros())
	fmt.Printf("L         : %6.2f µs\n", m.L.Micros())
	fmt.Printf("round trip: %6.2f µs\n", m.RTT.Micros())
	fmt.Printf("bulk BW   : %6.1f MB/s\n", m.BulkMBs)

	if *sig {
		bursts := []int{1, 2, 4, 8, 16, 32, 64}
		deltas := []sim.Time{0, sim.FromMicros(10)}
		pts, err := calib.Signature(params, bursts, deltas)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logpsig: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nburst  Δ(µs)  µs/msg")
		for _, p := range pts {
			fmt.Printf("%5d  %5.1f  %6.2f\n", p.Burst, p.Delta.Micros(), p.PerMsg.Micros())
		}
	}
}
