// Command reprod is the simulation-as-a-service daemon: it serves the
// run-plan engine over HTTP/JSON with a persistent content-addressed
// result cache (internal/service), so repeated and concurrent requests
// for the same design point cost one simulation total.
//
//	reprod serve [-addr :8080] [-cache .reprod-cache] [-workers N] [-max-queue N] [-addr-file path]
//	reprod loadtest [-addr URL] [-n 5000] [-concurrency 1000] [-hot 0.75] [-out results/BENCH_service.json]
//	reprod tolbench [-addr URL] [-app radix] [-points 40] [-out results/BENCH_tolerance.json]
//
// serve binds the daemon; -addr-file records the actual listen address
// (useful with ':0' in CI). loadtest drives a daemon — the one at -addr,
// or a self-spawned in-process one when -addr is empty — with seeded
// concurrent clients over a mixed hot/cold key population, honors 429
// backpressure via Retry-After, and writes a machine-readable report
// (requests/sec, client latency percentiles, server cache hit rate).
// tolbench asks one daemon the same overhead-sweep question both ways —
// N+1 simulations vs one instrumented run through the analytic fast
// path (/v1/sweep with "analytic": true) — and reports the wall-clock
// ratio and the analytic-vs-measured error over the grid.
//
// Endpoints: POST /v1/run, /v1/sweep, /v1/tolerance, /v1/experiment
// (add ?stream=1 for SSE progress), GET /v1/stats, /healthz. Example:
//
//	curl -s localhost:8080/v1/run -d '{"app":"radix","procs":32,"scale":0.00390625,"seed":1}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "loadtest":
		err = loadtestCmd(os.Args[2:])
	case "tolbench":
		err = tolbenchCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "reprod: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprod: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  reprod serve    [-addr :8080] [-cache DIR] [-workers N] [-max-queue N] [-addr-file PATH]
  reprod loadtest [-addr URL] [-cache DIR] [-n N] [-concurrency N] [-hot FRAC] [-seed N] [-out PATH]
  reprod tolbench [-addr URL] [-app NAME] [-procs N] [-scale F] [-seed N] [-points N] [-out PATH]`)
}

// serveCmd binds the daemon and runs until SIGINT/SIGTERM, then shuts
// down gracefully: HTTP first, then the worker pool drain.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address (':0' picks a free port)")
		cacheDir = fs.String("cache", ".reprod-cache", "persistent result store directory")
		workers  = fs.Int("workers", 0, "concurrent simulations across all clients (0 = GOMAXPROCS)")
		maxQueue = fs.Int("max-queue", 0, "admission bound on queued runs before 429 (0 = 1024)")
		addrFile = fs.String("addr-file", "", "write the actual listen address to this file")
	)
	fs.Parse(args)

	s, err := service.New(service.Config{CacheDir: *cacheDir, Workers: *workers, MaxQueue: *maxQueue})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "reprod: serving on %s (cache %s)\n", ln.Addr(), *cacheDir)

	hs := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		s.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "reprod: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = hs.Shutdown(shutdownCtx)
	s.Close()
	return err
}

// report is the machine-readable loadtest result (BENCH_service.json).
type report struct {
	Schema      int     `json:"schema"`
	GoVersion   string  `json:"go_version"`
	GOARCH      string  `json:"goarch"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	HotFrac     float64 `json:"hot_frac"`
	HotKeys     int     `json:"hot_keys"`
	ColdKeys    int     `json:"cold_keys"`
	Seed        int64   `json:"seed"`

	WallMs     float64 `json:"wall_ms"`
	ReqPerSec  float64 `json:"req_per_sec"`
	OK         int64   `json:"ok"`
	Retries429 int64   `json:"retries_429"`
	Errors     int64   `json:"errors"`

	LatencyUs latencyReport `json:"latency_us"`

	// Server-side view after the run.
	HitRate   float64 `json:"hit_rate"`
	DiskHits  int64   `json:"disk_hits"`
	Computed  int64   `json:"computed"`
	Coalesced int64   `json:"coalesced"`
	Rejected  int64   `json:"rejected"`
	MaxDepth  int     `json:"max_queue_depth"`
	Workers   int     `json:"workers"`
}

// latencyReport holds exact client-observed percentiles (the loadtest
// keeps every sample, unlike the server's bucketed histograms).
type latencyReport struct {
	MeanUs int64 `json:"mean"`
	P50Us  int64 `json:"p50"`
	P90Us  int64 `json:"p90"`
	P99Us  int64 `json:"p99"`
	MaxUs  int64 `json:"max"`
}

// tolReport is the machine-readable analytic-sweep benchmark
// (BENCH_tolerance.json): one overhead sweep answered twice — by N+1
// simulations through /v1/sweep, and by one instrumented run through
// the analytic fast path — with the wall-clock ratio and the
// cross-validation error between the two answers.
type tolReport struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`

	App    string  `json:"app"`
	Procs  int     `json:"procs"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	Knob   string  `json:"knob"`
	Points int     `json:"points"`

	// Cold analytic: one instrumented simulation + curve evaluation.
	AnalyticColdMs   float64 `json:"analytic_cold_wall_ms"`
	AnalyticColdRuns int     `json:"analytic_cold_runs"`
	// Warm analytic: pure curve evaluation from the persistent store.
	AnalyticWarmMs   float64 `json:"analytic_warm_wall_ms"`
	AnalyticWarmRuns int     `json:"analytic_warm_runs"`
	// Measured: baseline + one simulation per point.
	MeasuredMs   float64 `json:"measured_wall_ms"`
	MeasuredRuns int     `json:"measured_runs"`

	SpeedupCold float64 `json:"speedup_cold"` // measured / analytic-cold
	SpeedupWarm float64 `json:"speedup_warm"` // measured / analytic-warm

	// Agreement between the two answers over the swept points.
	ErrAtZeroPct float64 `json:"err_at_zero_pct"`
	MaxAbsErrPct float64 `json:"max_abs_err_pct"`
	Workers      int     `json:"workers"`
}

// tolbenchCmd quantifies the analytic fast path: it asks one daemon the
// same overhead-sweep question both ways on a cold cache and reports
// the wall-clock ratio (the PR's ≥10× headline) plus the analytic-vs-
// measured error over the grid.
func tolbenchCmd(args []string) error {
	fs := flag.NewFlagSet("tolbench", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "daemon base URL; empty spawns an in-process daemon on a fresh temp cache")
		app     = fs.String("app", "radix", "application")
		procs   = fs.Int("procs", 8, "cluster size")
		scale   = fs.Float64("scale", 1.0/2048, "input scale")
		seed    = fs.Int64("seed", 1, "simulation seed")
		points  = fs.Int("points", 40, "sweep grid size (overhead deltas, µs)")
		out     = fs.String("out", "results/BENCH_tolerance.json", "report path ('' = stdout only)")
		workers = fs.Int("workers", 0, "in-process daemon worker count (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	if *points < 2 {
		return errors.New("tolbench: -points must be at least 2")
	}

	base := *addr
	if base == "" {
		tmp, err := os.MkdirTemp("", "reprod-tolbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		s, err := service.New(service.Config{CacheDir: tmp, Workers: *workers})
		if err != nil {
			return err
		}
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "reprod: in-process daemon on %s (cache %s)\n", base, tmp)
	}

	// A 40-point overhead grid over the paper's sweep range [0, 100) µs.
	values := make([]float64, *points)
	for i := range values {
		values[i] = 100 * float64(i) / float64(*points)
	}
	ctx := context.Background()
	c := &service.Client{BaseURL: base, ID: "tolbench"}
	req := service.SweepRequest{
		App: *app, Procs: *procs, Scale: *scale, Seed: *seed,
		Knob: "o", Values: values,
	}

	sweep := func(analytic bool) (*service.SweepResponse, time.Duration, error) {
		r := req
		r.Analytic = analytic
		t0 := time.Now()
		resp, err := c.Sweep(ctx, r)
		return resp, time.Since(t0), err
	}

	// Analytic first (cold, then warm), so the measured sweep cannot have
	// pre-warmed anything for it: the instrumented baseline keys
	// separately from every measured run.
	anaCold, coldWall, err := sweep(true)
	if err != nil {
		return fmt.Errorf("tolbench: analytic sweep: %w", err)
	}
	anaWarm, warmWall, err := sweep(true)
	if err != nil {
		return fmt.Errorf("tolbench: warm analytic sweep: %w", err)
	}
	meas, measWall, err := sweep(false)
	if err != nil {
		return fmt.Errorf("tolbench: measured sweep: %w", err)
	}

	rep := tolReport{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		App:       *app, Procs: *procs, Scale: *scale, Seed: *seed,
		Knob: "o", Points: *points,
		AnalyticColdMs:   float64(coldWall.Nanoseconds()) / 1e6,
		AnalyticColdRuns: anaCold.Cache.Computed,
		AnalyticWarmMs:   float64(warmWall.Nanoseconds()) / 1e6,
		AnalyticWarmRuns: anaWarm.Cache.Computed,
		MeasuredMs:       float64(measWall.Nanoseconds()) / 1e6,
		MeasuredRuns:     meas.Cache.Computed,
		SpeedupCold:      float64(measWall) / float64(coldWall),
		SpeedupWarm:      float64(measWall) / float64(warmWall),
	}
	for i, mp := range meas.Points {
		if mp.Livelocked || mp.ElapsedNs == 0 || i >= len(anaCold.Points) {
			continue
		}
		e := 100 * abs(float64(anaCold.Points[i].ElapsedNs)-float64(mp.ElapsedNs)) / float64(mp.ElapsedNs)
		if mp.Value == 0 {
			rep.ErrAtZeroPct = e
		}
		if e > rep.MaxAbsErrPct {
			rep.MaxAbsErrPct = e
		}
	}
	stc := &service.Client{BaseURL: base}
	if st, err := stc.Stats(ctx); err == nil {
		rep.Workers = st.Sched.Workers
	}

	fmt.Printf("tolbench: %s p%d ×%d points: measured %.0fms (%d runs) vs analytic %.0fms cold / %.1fms warm → %.1fx / %.0fx; max err %.1f%%, err at Δ=0 %.2f%%\n",
		rep.App, rep.Procs, rep.Points, rep.MeasuredMs, rep.MeasuredRuns,
		rep.AnalyticColdMs, rep.AnalyticWarmMs, rep.SpeedupCold, rep.SpeedupWarm,
		rep.MaxAbsErrPct, rep.ErrAtZeroPct)
	if *out == "" {
		return nil
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("tolbench: report written to %s\n", *out)
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// loadtestCmd drives a daemon with seeded concurrent clients over a
// mixed hot/cold key population and writes the report.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "", "daemon base URL; empty spawns an in-process daemon")
		cacheDir    = fs.String("cache", "", "cache dir for the in-process daemon (empty = fresh temp dir)")
		n           = fs.Int("n", 5000, "total requests")
		concurrency = fs.Int("concurrency", 1000, "concurrent client goroutines")
		hotFrac     = fs.Float64("hot", 0.75, "fraction of requests aimed at the hot key set")
		hotKeys     = fs.Int("hot-keys", 16, "distinct hot specs")
		coldKeys    = fs.Int("cold-keys", 256, "distinct cold specs")
		seed        = fs.Int64("seed", 1, "loadtest RNG seed (key choice per request)")
		out         = fs.String("out", "results/BENCH_service.json", "report path ('' = stdout only)")
		workers     = fs.Int("workers", 0, "in-process daemon worker count (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	if *concurrency < 1 || *n < 1 {
		return errors.New("loadtest: -n and -concurrency must be positive")
	}

	base := *addr
	if base == "" {
		dir := *cacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "reprod-loadtest-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		s, err := service.New(service.Config{CacheDir: dir, Workers: *workers})
		if err != nil {
			return err
		}
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "reprod: in-process daemon on %s (cache %s)\n", base, dir)
	}

	// Key population: hot keys are revisited constantly (cache and
	// coalescing territory), cold keys mostly execute. Every key is a
	// distinct seed of one tiny app config, so each is one real
	// simulation with a distinct canonical hash.
	key := func(i int) service.RunRequest {
		return service.RunRequest{
			SpecJSON: service.SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: int64(1 + i)},
			Minimal:  true,
		}
	}
	keyOf := func(rng *rand.Rand) service.RunRequest {
		if rng.Float64() < *hotFrac {
			return key(rng.Intn(*hotKeys))
		}
		return key(*hotKeys + rng.Intn(*coldKeys))
	}

	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency}}
	var (
		next    atomic.Int64
		ok      atomic.Int64
		retries atomic.Int64
		fails   atomic.Int64
		mu      sync.Mutex
		lats    []int64
		firstE  error
	)
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			c := &service.Client{BaseURL: base, ID: fmt.Sprintf("load-%d", w), HTTP: httpc}
			for {
				if next.Add(1) > int64(*n) {
					return
				}
				req := keyOf(rng)
				t0 := time.Now()
				for {
					_, err := c.Run(ctx, req)
					if err == nil {
						break
					}
					var re *service.RetryError
					if errors.As(err, &re) {
						retries.Add(1)
						time.Sleep(re.After)
						continue
					}
					fails.Add(1)
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					break
				}
				us := time.Since(t0).Microseconds()
				ok.Add(1)
				mu.Lock()
				lats = append(lats, us)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstE != nil {
		return fmt.Errorf("loadtest: %d request(s) failed, first: %v", fails.Load(), firstE)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	var sum int64
	for _, v := range lats {
		sum += v
	}
	rep := report{
		Schema:      1,
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		Requests:    *n,
		Concurrency: *concurrency,
		HotFrac:     *hotFrac,
		HotKeys:     *hotKeys,
		ColdKeys:    *coldKeys,
		Seed:        *seed,
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		ReqPerSec:   float64(ok.Load()) / wall.Seconds(),
		OK:          ok.Load(),
		Retries429:  retries.Load(),
	}
	if len(lats) > 0 {
		rep.LatencyUs = latencyReport{
			MeanUs: sum / int64(len(lats)),
			P50Us:  pct(0.50),
			P90Us:  pct(0.90),
			P99Us:  pct(0.99),
			MaxUs:  lats[len(lats)-1],
		}
	}
	stc := &service.Client{BaseURL: base, HTTP: httpc}
	if st, err := stc.Stats(ctx); err == nil {
		rep.HitRate = st.HitRate
		rep.DiskHits = st.Cache.DiskHits
		rep.Computed = st.Cache.Computed
		rep.Coalesced = st.Cache.Coalesced
		rep.Rejected = st.Cache.Rejected
		rep.MaxDepth = st.Sched.MaxDepth
		rep.Workers = st.Sched.Workers
	}

	fmt.Printf("loadtest: %d requests, %d concurrent: %.0f req/s, hit rate %.1f%%, p50 %dµs p99 %dµs, %d retries\n",
		rep.Requests, rep.Concurrency, rep.ReqPerSec, 100*rep.HitRate,
		rep.LatencyUs.P50Us, rep.LatencyUs.P99Us, rep.Retries429)
	if *out == "" {
		return nil
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadtest: report written to %s\n", *out)
	return nil
}
