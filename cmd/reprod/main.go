// Command reprod is the simulation-as-a-service daemon: it serves the
// run-plan engine over HTTP/JSON with a persistent content-addressed
// result cache (internal/service), so repeated and concurrent requests
// for the same design point cost one simulation total.
//
//	reprod serve [-addr :8080] [-cache .reprod-cache] [-workers N] [-max-queue N] [-addr-file path]
//	reprod loadtest [-addr URL] [-n 5000] [-concurrency 1000] [-hot 0.75] [-out results/BENCH_service.json]
//
// serve binds the daemon; -addr-file records the actual listen address
// (useful with ':0' in CI). loadtest drives a daemon — the one at -addr,
// or a self-spawned in-process one when -addr is empty — with seeded
// concurrent clients over a mixed hot/cold key population, honors 429
// backpressure via Retry-After, and writes a machine-readable report
// (requests/sec, client latency percentiles, server cache hit rate).
//
// Endpoints: POST /v1/run, /v1/sweep, /v1/experiment (add ?stream=1 for
// SSE progress), GET /v1/stats, /healthz. Example:
//
//	curl -s localhost:8080/v1/run -d '{"app":"radix","procs":32,"scale":0.00390625,"seed":1}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serveCmd(os.Args[2:])
	case "loadtest":
		err = loadtestCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "reprod: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprod: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  reprod serve    [-addr :8080] [-cache DIR] [-workers N] [-max-queue N] [-addr-file PATH]
  reprod loadtest [-addr URL] [-cache DIR] [-n N] [-concurrency N] [-hot FRAC] [-seed N] [-out PATH]`)
}

// serveCmd binds the daemon and runs until SIGINT/SIGTERM, then shuts
// down gracefully: HTTP first, then the worker pool drain.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address (':0' picks a free port)")
		cacheDir = fs.String("cache", ".reprod-cache", "persistent result store directory")
		workers  = fs.Int("workers", 0, "concurrent simulations across all clients (0 = GOMAXPROCS)")
		maxQueue = fs.Int("max-queue", 0, "admission bound on queued runs before 429 (0 = 1024)")
		addrFile = fs.String("addr-file", "", "write the actual listen address to this file")
	)
	fs.Parse(args)

	s, err := service.New(service.Config{CacheDir: *cacheDir, Workers: *workers, MaxQueue: *maxQueue})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "reprod: serving on %s (cache %s)\n", ln.Addr(), *cacheDir)

	hs := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		s.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "reprod: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = hs.Shutdown(shutdownCtx)
	s.Close()
	return err
}

// report is the machine-readable loadtest result (BENCH_service.json).
type report struct {
	Schema      int     `json:"schema"`
	GoVersion   string  `json:"go_version"`
	GOARCH      string  `json:"goarch"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	HotFrac     float64 `json:"hot_frac"`
	HotKeys     int     `json:"hot_keys"`
	ColdKeys    int     `json:"cold_keys"`
	Seed        int64   `json:"seed"`

	WallMs     float64 `json:"wall_ms"`
	ReqPerSec  float64 `json:"req_per_sec"`
	OK         int64   `json:"ok"`
	Retries429 int64   `json:"retries_429"`
	Errors     int64   `json:"errors"`

	LatencyUs latencyReport `json:"latency_us"`

	// Server-side view after the run.
	HitRate   float64 `json:"hit_rate"`
	DiskHits  int64   `json:"disk_hits"`
	Computed  int64   `json:"computed"`
	Coalesced int64   `json:"coalesced"`
	Rejected  int64   `json:"rejected"`
	MaxDepth  int     `json:"max_queue_depth"`
	Workers   int     `json:"workers"`
}

// latencyReport holds exact client-observed percentiles (the loadtest
// keeps every sample, unlike the server's bucketed histograms).
type latencyReport struct {
	MeanUs int64 `json:"mean"`
	P50Us  int64 `json:"p50"`
	P90Us  int64 `json:"p90"`
	P99Us  int64 `json:"p99"`
	MaxUs  int64 `json:"max"`
}

// loadtestCmd drives a daemon with seeded concurrent clients over a
// mixed hot/cold key population and writes the report.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "", "daemon base URL; empty spawns an in-process daemon")
		cacheDir    = fs.String("cache", "", "cache dir for the in-process daemon (empty = fresh temp dir)")
		n           = fs.Int("n", 5000, "total requests")
		concurrency = fs.Int("concurrency", 1000, "concurrent client goroutines")
		hotFrac     = fs.Float64("hot", 0.75, "fraction of requests aimed at the hot key set")
		hotKeys     = fs.Int("hot-keys", 16, "distinct hot specs")
		coldKeys    = fs.Int("cold-keys", 256, "distinct cold specs")
		seed        = fs.Int64("seed", 1, "loadtest RNG seed (key choice per request)")
		out         = fs.String("out", "results/BENCH_service.json", "report path ('' = stdout only)")
		workers     = fs.Int("workers", 0, "in-process daemon worker count (0 = GOMAXPROCS)")
	)
	fs.Parse(args)
	if *concurrency < 1 || *n < 1 {
		return errors.New("loadtest: -n and -concurrency must be positive")
	}

	base := *addr
	if base == "" {
		dir := *cacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "reprod-loadtest-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		s, err := service.New(service.Config{CacheDir: dir, Workers: *workers})
		if err != nil {
			return err
		}
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "reprod: in-process daemon on %s (cache %s)\n", base, dir)
	}

	// Key population: hot keys are revisited constantly (cache and
	// coalescing territory), cold keys mostly execute. Every key is a
	// distinct seed of one tiny app config, so each is one real
	// simulation with a distinct canonical hash.
	key := func(i int) service.RunRequest {
		return service.RunRequest{
			SpecJSON: service.SpecJSON{App: "radix", Procs: 4, Scale: 1.0 / 4096, Seed: int64(1 + i)},
			Minimal:  true,
		}
	}
	keyOf := func(rng *rand.Rand) service.RunRequest {
		if rng.Float64() < *hotFrac {
			return key(rng.Intn(*hotKeys))
		}
		return key(*hotKeys + rng.Intn(*coldKeys))
	}

	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency}}
	var (
		next    atomic.Int64
		ok      atomic.Int64
		retries atomic.Int64
		fails   atomic.Int64
		mu      sync.Mutex
		lats    []int64
		firstE  error
	)
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			c := &service.Client{BaseURL: base, ID: fmt.Sprintf("load-%d", w), HTTP: httpc}
			for {
				if next.Add(1) > int64(*n) {
					return
				}
				req := keyOf(rng)
				t0 := time.Now()
				for {
					_, err := c.Run(ctx, req)
					if err == nil {
						break
					}
					var re *service.RetryError
					if errors.As(err, &re) {
						retries.Add(1)
						time.Sleep(re.After)
						continue
					}
					fails.Add(1)
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					break
				}
				us := time.Since(t0).Microseconds()
				ok.Add(1)
				mu.Lock()
				lats = append(lats, us)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstE != nil {
		return fmt.Errorf("loadtest: %d request(s) failed, first: %v", fails.Load(), firstE)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	var sum int64
	for _, v := range lats {
		sum += v
	}
	rep := report{
		Schema:      1,
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		Requests:    *n,
		Concurrency: *concurrency,
		HotFrac:     *hotFrac,
		HotKeys:     *hotKeys,
		ColdKeys:    *coldKeys,
		Seed:        *seed,
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		ReqPerSec:   float64(ok.Load()) / wall.Seconds(),
		OK:          ok.Load(),
		Retries429:  retries.Load(),
	}
	if len(lats) > 0 {
		rep.LatencyUs = latencyReport{
			MeanUs: sum / int64(len(lats)),
			P50Us:  pct(0.50),
			P90Us:  pct(0.90),
			P99Us:  pct(0.99),
			MaxUs:  lats[len(lats)-1],
		}
	}
	stc := &service.Client{BaseURL: base, HTTP: httpc}
	if st, err := stc.Stats(ctx); err == nil {
		rep.HitRate = st.HitRate
		rep.DiskHits = st.Cache.DiskHits
		rep.Computed = st.Cache.Computed
		rep.Coalesced = st.Cache.Coalesced
		rep.Rejected = st.Cache.Rejected
		rep.MaxDepth = st.Sched.MaxDepth
		rep.Workers = st.Sched.Workers
	}

	fmt.Printf("loadtest: %d requests, %d concurrent: %.0f req/s, hit rate %.1f%%, p50 %dµs p99 %dµs, %d retries\n",
		rep.Requests, rep.Concurrency, rep.ReqPerSec, 100*rep.HitRate,
		rep.LatencyUs.P50Us, rep.LatencyUs.P99Us, rep.Retries429)
	if *out == "" {
		return nil
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadtest: report written to %s\n", *out)
	return nil
}
