// Command appstat runs one benchmark application and prints its full
// communication characterization: the Table 4 row plus the Figure 4
// balance matrix.
//
// Usage:
//
//	appstat -app radix -procs 32 -scale 0.00390625 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
)

func main() {
	var (
		name   = flag.String("app", "radix", "application name (see -listapps)")
		listA  = flag.Bool("listapps", false, "list benchmark applications")
		procs  = flag.Int("procs", 32, "cluster size")
		scale  = flag.Float64("scale", 1.0/256, "input scale")
		seed   = flag.Int64("seed", 1, "random seed")
		verify = flag.Bool("verify", false, "check the result against the serial reference")
		dO     = flag.Float64("dO", 0, "added overhead (µs)")
		dG     = flag.Float64("dG", 0, "added gap (µs)")
		dL     = flag.Float64("dL", 0, "added latency (µs)")
		bwCap  = flag.Float64("bw", 0, "bulk bandwidth cap (MB/s)")
		tline  = flag.Bool("timeline", false, "render a per-processor activity timeline (traces every message)")
		doProf = flag.Bool("profile", false, "attach the stall-attribution profiler and print the time breakdown")
		doDot  = flag.Bool("depgraph", false, "dump the parametric communication DAG as Graphviz DOT on stdout (use small -scale)")
	)
	flag.Parse()

	if *listA {
		for _, a := range repro.Suite() {
			fmt.Printf("%-11s %s\n", a.Name(), a.Description())
		}
		return
	}

	a, err := repro.AppByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "appstat: %v\n", err)
		os.Exit(2)
	}
	params := repro.NOW()
	params.DeltaO = repro.FromMicros(*dO)
	params.DeltaG = repro.FromMicros(*dG)
	params.DeltaL = repro.FromMicros(*dL)
	params.BulkBandwidthMBs = *bwCap
	cfg := repro.AppConfig{Procs: *procs, Scale: *scale, Params: params, Seed: *seed, Verify: *verify}
	cfg.Profile = *doProf
	cfg.Depgraph = *doDot
	var rec *repro.TraceRecorder
	if *tline {
		rec = &repro.TraceRecorder{Limit: 2_000_000}
		cfg.Hooks = rec
	}

	if *doDot {
		// DOT only, so the output pipes straight into graphviz.
		res, err := a.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "appstat: %v\n", err)
			os.Exit(1)
		}
		if res.DepgraphErr != "" {
			fmt.Fprintf(os.Stderr, "appstat: depgraph: %s\n", res.DepgraphErr)
			os.Exit(1)
		}
		if err := res.Graph.DOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "appstat: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s — %s\n", a.PaperName(), a.Description())
	fmt.Printf("input  : %s\n", a.InputDesc(cfg))
	fmt.Printf("machine: %v\n", params)
	res, err := a.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "appstat: %v\n", err)
		os.Exit(1)
	}
	s := res.Summary
	fmt.Printf("run time          : %v\n", res.Elapsed)
	if *verify {
		fmt.Printf("verified          : %v\n", res.Verified)
	}
	fmt.Printf("avg msgs/proc     : %.0f\n", s.AvgMsgsPerProc)
	fmt.Printf("max msgs/proc     : %d\n", s.MaxMsgsPerProc)
	fmt.Printf("msgs/proc/ms      : %.2f\n", s.MsgsPerProcPerMs)
	fmt.Printf("msg interval      : %.1f µs\n", s.MsgIntervalUs)
	fmt.Printf("barrier interval  : %.2f ms\n", s.BarrierIntervalMs)
	fmt.Printf("bulk messages     : %.2f%%\n", s.PercentBulk)
	fmt.Printf("read messages     : %.2f%%\n", s.PercentReads)
	fmt.Printf("bulk bandwidth    : %.1f KB/s/proc\n", s.BulkKBsPerProc)
	fmt.Printf("small-msg bandwidth: %.1f KB/s/proc\n", s.SmallKBsPerProc)
	extras := make([]string, 0, len(res.Extra))
	for k := range res.Extra {
		extras = append(extras, k)
	}
	sort.Strings(extras)
	for _, k := range extras {
		fmt.Printf("%-18s: %.0f\n", k, res.Extra[k])
	}

	fmt.Println("\ncommunication balance (row = sender):")
	shades := []rune(" .:-=+*#%@█")
	var mx int64
	for _, row := range res.Stats.Matrix {
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
	}
	for _, row := range res.Stats.Matrix {
		var b strings.Builder
		for _, v := range row {
			idx := 0
			if mx > 0 && v > 0 {
				idx = 1 + int(int64(len(shades)-2)*v/mx)
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteRune(shades[idx])
		}
		fmt.Println("  " + b.String())
	}

	if res.Profile != nil {
		fmt.Println()
		fmt.Print(res.Profile.Text())
		if err := res.Profile.CheckConservation(); err != nil {
			fmt.Fprintf(os.Stderr, "appstat: %v\n", err)
			os.Exit(1)
		}
	}

	if rec != nil {
		fmt.Println()
		fmt.Println("activity timeline (sends per processor over time):")
		fmt.Print(rec.Timeline(*procs, 100))
	}
}
