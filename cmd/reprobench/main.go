// Command reprobench runs the simulator's performance regression matrix
// and emits a machine-readable report (BENCH_sim.json by default).
//
// The matrix exercises the engine's hot paths in host time: a windowed
// short-message stream, a bulk DMA stream, two suite applications, and
// (outside -quick) the fig5b sweep on the parallel worker pool. With
// -baseline the current report is compared case by case against a saved
// one and the command exits 1 when any case's ns/msg grew more than
// -tolerance (default 20%).
//
// Timing figures are host-specific: compare baselines only on the same
// machine and toolchain. The deterministic columns (events run, switches,
// switches saved) are comparable anywhere.
//
// With -scale the hot-path matrix is replaced by the weak-scaling
// matrix: the three scalekern continuation kernels up the processor
// ladder (to P=1M full, P=10k quick), measuring wall-clock, events/sec,
// and heap bytes per simulated processor. Its report defaults to
// BENCH_scale.json.
//
// Usage:
//
//	reprobench -quick -out BENCH_sim.json
//	reprobench -jobs 8 -out BENCH_sim.json -baseline results/BENCH_baseline.json
//	reprobench -scale -quick -baseline results/BENCH_scale.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "trimmed matrix: fewer messages, no sweep case (CI smoke mode)")
		jobs     = flag.Int("jobs", 0, "worker-pool width for the sweep case (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 1, "random seed for application inputs")
		out      = flag.String("out", "BENCH_sim.json", "report output path ('' = stdout table only)")
		baseline = flag.String("baseline", "", "compare against this saved report; exit 1 on regression")
		tol      = flag.Float64("tolerance", bench.DefaultTolerance, "fractional ns/msg growth allowed before failing")
		scale    = flag.Bool("scale", false, "run the weak-scaling matrix instead of the hot-path matrix")
	)
	flag.Parse()

	var rep *bench.Report
	var err error
	if *scale {
		if *out == "BENCH_sim.json" {
			*out = "BENCH_scale.json"
		}
		rep, err = bench.RunScale(bench.ScaleOptions{Quick: *quick, Seed: *seed})
	} else {
		rep, err = bench.Run(bench.Options{Quick: *quick, Jobs: *jobs, Seed: *seed})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "reprobench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report -> %s\n", *out)
	}
	if *baseline == "" {
		return
	}
	base, err := bench.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench: %v\n", err)
		os.Exit(1)
	}
	if base.Quick != rep.Quick {
		// Quick and full matrices amortize warm-up over different message
		// counts; their per-message figures are not comparable.
		fmt.Fprintf(os.Stderr, "reprobench: baseline %s was recorded in a different mode (quick=%v vs quick=%v); record a matching baseline\n",
			*baseline, base.Quick, rep.Quick)
		os.Exit(2)
	}
	regs := bench.Compare(rep, base, *tol)
	if len(regs) == 0 {
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", *baseline, *tol*100)
		return
	}
	fmt.Fprintf(os.Stderr, "reprobench: %d regression(s) vs %s:\n", len(regs), *baseline)
	for _, g := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", g)
	}
	os.Exit(1)
}
